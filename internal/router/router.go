// Package router implements DumbNet's layer-3 extension (paper §6.3): a
// software router built on ordinary host agents, plus the cross-subnet
// source-routing shortcut where the router tells a source the combined path
// so later packets skip the router entirely.
//
// Addresses are IPv4-style 32-bit values; the mini IP header carried in the
// DumbNet payload is 9 bytes: version/proto byte, source IP, destination
// IP. That is all a routing demonstration needs.
package router

import (
	"encoding/binary"
	"errors"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
)

// IP is a 32-bit address.
type IP uint32

// Prefix is an address block.
type Prefix struct {
	Addr IP
	Bits int
}

// Contains reports whether the prefix covers ip.
func (p Prefix) Contains(ip IP) bool {
	if p.Bits <= 0 {
		return true
	}
	mask := ^IP(0) << (32 - uint(p.Bits))
	return ip&mask == p.Addr&mask
}

// IPHeaderLen is the mini IP header length.
const IPHeaderLen = 9

// Errors.
var (
	ErrShortPacket = errors.New("router: packet shorter than IP header")
	ErrNoRoute     = errors.New("router: no route to destination")
	ErrNoARP       = errors.New("router: destination IP has no MAC binding")
)

// EncodeIP prepends the mini IP header to a payload.
func EncodeIP(src, dst IP, body []byte) []byte {
	buf := make([]byte, IPHeaderLen+len(body))
	buf[0] = 0x45 // version 4-ish marker
	binary.BigEndian.PutUint32(buf[1:5], uint32(src))
	binary.BigEndian.PutUint32(buf[5:9], uint32(dst))
	copy(buf[IPHeaderLen:], body)
	return buf
}

// DecodeIP splits the mini IP header from a payload.
func DecodeIP(b []byte) (src, dst IP, body []byte, err error) {
	if len(b) < IPHeaderLen {
		return 0, 0, nil, ErrShortPacket
	}
	return IP(binary.BigEndian.Uint32(b[1:5])), IP(binary.BigEndian.Uint32(b[5:9])), b[IPHeaderLen:], nil
}

// Subnet is one attached network: a prefix plus the IP→MAC bindings of its
// hosts (the router's ARP table for that side).
type Subnet struct {
	Prefix Prefix
	arp    map[IP]packet.MAC
}

// Router is "a number of host agents running on the same node" (§6.3) — in
// a single-fabric deployment, one agent suffices, with per-subnet ARP
// tables deciding where packets go next.
type Router struct {
	agent   *host.Agent
	subnets []*Subnet

	stats Stats
}

// Stats counts router activity.
type Stats struct {
	Forwarded uint64
	NoRoute   uint64
	NoARP     uint64
	Shortcuts uint64
}

// New creates a router on an agent. The agent's OnData hook is taken over;
// attach the router after the agent is bootstrapped.
func New(agent *host.Agent) *Router {
	r := &Router{agent: agent}
	agent.OnData = r.onData
	return r
}

// Stats returns a copy of the counters.
func (r *Router) Stats() Stats { return r.stats }

// AddSubnet declares a prefix with its host bindings.
func (r *Router) AddSubnet(p Prefix, hosts map[IP]packet.MAC) *Subnet {
	s := &Subnet{Prefix: p, arp: make(map[IP]packet.MAC, len(hosts))}
	for ip, mac := range hosts {
		s.arp[ip] = mac
	}
	r.subnets = append(r.subnets, s)
	return s
}

// Lookup resolves a destination IP to its subnet and MAC.
func (r *Router) Lookup(dst IP) (packet.MAC, error) {
	var best *Subnet
	for _, s := range r.subnets {
		if s.Prefix.Contains(dst) {
			if best == nil || s.Prefix.Bits > best.Prefix.Bits {
				best = s
			}
		}
	}
	if best == nil {
		return packet.MAC{}, ErrNoRoute
	}
	mac, ok := best.arp[dst]
	if !ok {
		return packet.MAC{}, ErrNoARP
	}
	return mac, nil
}

// onData forwards IP packets arriving at the router: unchanged Ethernet
// forwarding logic, new tags on the way out — exactly a host agent's send.
func (r *Router) onData(from packet.MAC, innerType uint16, payload []byte) {
	_, dst, _, err := DecodeIP(payload)
	if err != nil {
		return
	}
	mac, err := r.Lookup(dst)
	if err != nil {
		if errors.Is(err, ErrNoRoute) {
			r.stats.NoRoute++
		} else {
			r.stats.NoARP++
		}
		return
	}
	r.stats.Forwarded++
	_ = r.agent.Send(mac, packet.EtherTypeIPv4, payload, host.FlowKey{Dst: mac})
}

// Shortcut implements the §6.3 optimization: the router reveals the
// destination's MAC so the source can source-route directly across subnets
// (its own controller/TopoCache supplies the combined path), bypassing the
// router for the rest of the flow.
func (r *Router) Shortcut(dst IP) (packet.MAC, error) {
	mac, err := r.Lookup(dst)
	if err == nil {
		r.stats.Shortcuts++
	}
	return mac, err
}

// MAC returns the router's own address (hosts' default gateway).
func (r *Router) MAC() packet.MAC { return r.agent.MAC() }
