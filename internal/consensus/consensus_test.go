package consensus

import (
	"errors"
	"fmt"
	"testing"

	"dumbnet/internal/sim"
)

// runCluster spins a cluster and settles it for d virtual time.
func settle(eng *sim.Engine, d sim.Time) { eng.RunFor(d) }

func newTestCluster(t *testing.T, n int, seed int64) (*sim.Engine, *Cluster, map[NodeID][]Entry) {
	t.Helper()
	eng := sim.NewEngine(seed)
	applied := make(map[NodeID][]Entry)
	c := NewCluster(eng, n, DefaultConfig(), func(id NodeID, e Entry) {
		applied[id] = append(applied[id], e)
	})
	return eng, c, applied
}

func TestLeaderElection(t *testing.T) {
	eng, c, _ := newTestCluster(t, 3, 1)
	settle(eng, sim.Second)
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader after 1s")
	}
	// Exactly one leader.
	count := 0
	for i := 0; i < c.Size(); i++ {
		if c.Node(NodeID(i)).Role() == Leader {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("leaders = %d", count)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	eng, c, applied := newTestCluster(t, 1, 1)
	settle(eng, sim.Second)
	leader := c.Leader()
	if leader == nil {
		t.Fatal("single node should elect itself")
	}
	if _, err := leader.Propose([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	settle(eng, 100*sim.Millisecond)
	if len(applied[leader.ID()]) != 1 {
		t.Fatal("entry not applied")
	}
}

func TestReplicationAndApply(t *testing.T) {
	eng, c, applied := newTestCluster(t, 3, 2)
	settle(eng, sim.Second)
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 5; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	settle(eng, 500*sim.Millisecond)
	for i := 0; i < 3; i++ {
		id := NodeID(i)
		if len(applied[id]) != 5 {
			t.Fatalf("node %d applied %d of 5", id, len(applied[id]))
		}
		for j, e := range applied[id] {
			want := fmt.Sprintf("entry-%d", j)
			if string(e.Data) != want || e.Index != uint64(j+1) {
				t.Fatalf("node %d entry %d = %q idx %d", id, j, e.Data, e.Index)
			}
		}
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	eng, c, _ := newTestCluster(t, 3, 3)
	settle(eng, sim.Second)
	leader := c.Leader()
	for i := 0; i < c.Size(); i++ {
		n := c.Node(NodeID(i))
		if n == leader {
			continue
		}
		if _, err := n.Propose([]byte("x")); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower accepted proposal: %v", err)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	eng, c, applied := newTestCluster(t, 3, 4)
	settle(eng, sim.Second)
	old := c.Leader()
	if old == nil {
		t.Fatal("no initial leader")
	}
	if _, err := old.Propose([]byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	settle(eng, 300*sim.Millisecond)
	old.Crash()
	settle(eng, 2*sim.Second)
	newLeader := c.Leader()
	if newLeader == nil || newLeader.ID() == old.ID() {
		t.Fatal("no new leader elected after crash")
	}
	if _, err := newLeader.Propose([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	settle(eng, 500*sim.Millisecond)
	// Both survivors must have both entries.
	for i := 0; i < 3; i++ {
		id := NodeID(i)
		if c.Node(id).Down() {
			continue
		}
		if len(applied[id]) != 2 {
			t.Fatalf("node %d applied %d of 2", id, len(applied[id]))
		}
		if string(applied[id][0].Data) != "before-crash" || string(applied[id][1].Data) != "after-crash" {
			t.Fatalf("node %d log mismatch", id)
		}
	}
}

func TestCrashedNodeCatchesUpOnRestart(t *testing.T) {
	eng, c, applied := newTestCluster(t, 3, 5)
	settle(eng, sim.Second)
	leader := c.Leader()
	victim := c.Node((leader.ID() + 1) % 3)
	victim.Crash()
	for i := 0; i < 4; i++ {
		if _, err := leader.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	settle(eng, 500*sim.Millisecond)
	if len(applied[victim.ID()]) != 0 {
		t.Fatal("crashed node applied entries")
	}
	victim.Restart()
	settle(eng, 2*sim.Second)
	if len(applied[victim.ID()]) != 4 {
		t.Fatalf("restarted node applied %d of 4", len(applied[victim.ID()]))
	}
}

func TestNoCommitWithoutQuorum(t *testing.T) {
	eng, c, applied := newTestCluster(t, 5, 6)
	settle(eng, sim.Second)
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	// Cut the leader off from 3 of 4 peers: it keeps 1 follower = no quorum.
	cut := 0
	for i := 0; i < 5 && cut < 3; i++ {
		id := NodeID(i)
		if id != leader.ID() {
			c.Partition(leader.ID(), id)
			cut++
		}
	}
	if _, err := leader.Propose([]byte("minority")); err != nil {
		t.Fatal(err)
	}
	settle(eng, 300*sim.Millisecond)
	if got := len(applied[leader.ID()]); got != 0 {
		t.Fatalf("minority leader committed %d entries", got)
	}
	// Heal: either the old leader resumes or a majority-side leader with a
	// higher term took over and the entry is superseded. Both are legal;
	// what matters is all nodes converge to identical committed logs.
	c.Heal()
	settle(eng, 3*sim.Second)
	l := c.Leader()
	if l == nil {
		t.Fatal("no leader after heal")
	}
	if _, err := l.Propose([]byte("post-heal")); err != nil {
		t.Fatal(err)
	}
	settle(eng, sim.Second)
	want := applied[l.ID()]
	if len(want) == 0 || string(want[len(want)-1].Data) != "post-heal" {
		t.Fatalf("leader log = %v", want)
	}
	for i := 0; i < 5; i++ {
		id := NodeID(i)
		got := applied[id]
		if len(got) != len(want) {
			t.Fatalf("node %d applied %d, leader %d", id, len(got), len(want))
		}
		for j := range got {
			if string(got[j].Data) != string(want[j].Data) {
				t.Fatalf("node %d diverged at %d", id, j)
			}
		}
	}
}

func TestIsolatedLeaderStepsAside(t *testing.T) {
	eng, c, _ := newTestCluster(t, 3, 7)
	settle(eng, sim.Second)
	old := c.Leader()
	c.Isolate(old.ID())
	settle(eng, 2*sim.Second)
	// Majority side elects a fresh leader with a higher term.
	fresh := c.Leader()
	if fresh == nil {
		t.Fatal("no leader on majority side")
	}
	if fresh.ID() == old.ID() {
		t.Fatal("isolated node still considered cluster leader")
	}
	if fresh.Term() <= old.Term() && old.Role() == Leader {
		t.Fatalf("fresh term %d not above old %d", fresh.Term(), old.Term())
	}
}

func TestCommittedEntriesSurviveLeaderChanges(t *testing.T) {
	eng, c, applied := newTestCluster(t, 5, 8)
	settle(eng, sim.Second)
	var all []string
	for round := 0; round < 3; round++ {
		leader := c.Leader()
		if leader == nil {
			settle(eng, 2*sim.Second)
			leader = c.Leader()
			if leader == nil {
				t.Fatalf("round %d: no leader", round)
			}
		}
		data := fmt.Sprintf("round-%d", round)
		if _, err := leader.Propose([]byte(data)); err != nil {
			t.Fatal(err)
		}
		all = append(all, data)
		settle(eng, 500*sim.Millisecond)
		leader.Crash()
		settle(eng, 2*sim.Second)
		leader.Restart()
		settle(eng, sim.Second)
	}
	settle(eng, 2*sim.Second)
	for i := 0; i < 5; i++ {
		id := NodeID(i)
		if len(applied[id]) != len(all) {
			t.Fatalf("node %d applied %d of %d", id, len(applied[id]), len(all))
		}
		for j, want := range all {
			if string(applied[id][j].Data) != want {
				t.Fatalf("node %d entry %d = %q, want %q", id, j, applied[id][j].Data, want)
			}
		}
	}
}

func TestEntryAt(t *testing.T) {
	eng, c, _ := newTestCluster(t, 3, 9)
	settle(eng, sim.Second)
	leader := c.Leader()
	idx, err := leader.Propose([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	settle(eng, 500*sim.Millisecond)
	e, ok := leader.EntryAt(idx)
	if !ok || string(e.Data) != "hello" {
		t.Fatalf("EntryAt = %+v, %v", e, ok)
	}
	if _, ok := leader.EntryAt(0); ok {
		t.Fatal("index 0 should fail")
	}
	if _, ok := leader.EntryAt(idx + 100); ok {
		t.Fatal("future index should fail")
	}
}

func TestProposeOnCrashedNode(t *testing.T) {
	eng, c, _ := newTestCluster(t, 3, 10)
	settle(eng, sim.Second)
	leader := c.Leader()
	leader.Crash()
	if _, err := leader.Propose([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	leader.Restart()
	leader.Restart() // idempotent
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("role names")
	}
	if Role(9).String() != "role(9)" {
		t.Fatal("unknown role")
	}
}

// Determinism: identical seeds give identical election outcomes.
func TestDeterministicElections(t *testing.T) {
	run := func() (NodeID, uint64) {
		eng, c, _ := newTestCluster(t, 5, 42)
		settle(eng, 2*sim.Second)
		l := c.Leader()
		if l == nil {
			t.Fatal("no leader")
		}
		return l.ID(), l.Term()
	}
	id1, t1 := run()
	id2, t2 := run()
	if id1 != id2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", id1, t1, id2, t2)
	}
}

// Safety property across random crash/restart schedules: all nodes apply
// identical prefixes (no divergence), for several seeds.
func TestAppliedPrefixConsistencyUnderChaos(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		eng, c, applied := newTestCluster(t, 5, 100+seed)
		rng := eng.Rand()
		settle(eng, sim.Second)
		proposed := 0
		for step := 0; step < 30; step++ {
			switch rng.Intn(4) {
			case 0: // propose
				if l := c.Leader(); l != nil {
					if _, err := l.Propose([]byte{byte(proposed)}); err == nil {
						proposed++
					}
				}
			case 1: // crash someone
				c.Node(NodeID(rng.Intn(5))).Crash()
			case 2: // restart someone
				c.Node(NodeID(rng.Intn(5))).Restart()
			case 3: // let time pass
			}
			settle(eng, 300*sim.Millisecond)
		}
		// Revive everyone and settle.
		for i := 0; i < 5; i++ {
			c.Node(NodeID(i)).Restart()
		}
		settle(eng, 5*sim.Second)
		// All applied sequences must be prefix-consistent.
		var longest []Entry
		for i := 0; i < 5; i++ {
			if len(applied[NodeID(i)]) > len(longest) {
				longest = applied[NodeID(i)]
			}
		}
		for i := 0; i < 5; i++ {
			seq := applied[NodeID(i)]
			for j := range seq {
				if seq[j].Index != longest[j].Index || seq[j].Term != longest[j].Term ||
					string(seq[j].Data) != string(longest[j].Data) {
					t.Fatalf("seed %d: node %d diverged at %d", seed, i, j)
				}
			}
		}
	}
}
