// Package consensus implements a compact leader-based replicated log — the
// substitute for the Apache ZooKeeper deployment the paper uses to keep
// controller replicas' topology views consistent (§4.1, §4.2).
//
// The protocol is a minimal Raft: randomized election timeouts, term-based
// leader election with log-recency voting, quorum-acknowledged log
// replication, and monotonic commit. Nodes exchange messages over an
// in-memory cluster bus driven by the discrete-event engine, so elections,
// failures and partitions are fully deterministic under a fixed seed.
package consensus

import (
	"errors"
	"fmt"
	"sort"

	"dumbnet/internal/sim"
)

// NodeID identifies a replica (0-based).
type NodeID int

// Entry is one replicated log record.
type Entry struct {
	Term  uint64
	Index uint64 // 1-based
	Data  []byte
}

// Role is a replica's current protocol role.
type Role uint8

// Roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Config tunes protocol timing.
type Config struct {
	HeartbeatInterval  sim.Time
	ElectionTimeoutMin sim.Time
	ElectionTimeoutMax sim.Time
	// MessageDelay is the one-way replica-to-replica latency.
	MessageDelay sim.Time
}

// DefaultConfig uses data-center-ish timing.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval:  20 * sim.Millisecond,
		ElectionTimeoutMin: 100 * sim.Millisecond,
		ElectionTimeoutMax: 200 * sim.Millisecond,
		MessageDelay:       500 * sim.Microsecond,
	}
}

// Errors.
var (
	ErrNotLeader = errors.New("consensus: not the leader")
	ErrCrashed   = errors.New("consensus: node is down")
)

// message kinds.
type msgKind uint8

const (
	msgVoteReq msgKind = iota
	msgVoteReply
	msgAppend
	msgAppendReply
)

type message struct {
	kind msgKind
	from NodeID
	term uint64

	// vote request
	lastLogIndex uint64
	lastLogTerm  uint64
	// vote reply
	granted bool
	// append
	prevIndex    uint64
	prevTerm     uint64
	entries      []Entry
	leaderCommit uint64
	// append reply
	success    bool
	matchIndex uint64
}

// Cluster is the replica group plus its message bus.
type Cluster struct {
	eng   *sim.Engine
	cfg   Config
	nodes []*Node
	// blocked[a][b] drops messages a->b (one direction).
	blocked map[NodeID]map[NodeID]bool
}

// NewCluster creates n replicas. Apply (optional) is invoked on every node
// for each committed entry, in log order.
func NewCluster(eng *sim.Engine, n int, cfg Config, apply func(node NodeID, e Entry)) *Cluster {
	c := &Cluster{eng: eng, cfg: cfg, blocked: make(map[NodeID]map[NodeID]bool)}
	for i := 0; i < n; i++ {
		node := &Node{
			id:       NodeID(i),
			cluster:  c,
			votedFor: -1,
			apply:    apply,
		}
		c.nodes = append(c.nodes, node)
	}
	for _, node := range c.nodes {
		node.resetElectionTimer()
	}
	return c
}

// Node returns a replica by ID.
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[int(id)] }

// Size returns the replica count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Leader returns the current leader with the highest term, or nil.
func (c *Cluster) Leader() *Node {
	var best *Node
	for _, n := range c.nodes {
		if n.role == Leader && !n.down && (best == nil || n.term > best.term) {
			best = n
		}
	}
	return best
}

// Partition blocks traffic between a and b in both directions.
func (c *Cluster) Partition(a, b NodeID) {
	c.block(a, b, true)
	c.block(b, a, true)
}

// HealPartition restores traffic between a and b.
func (c *Cluster) HealPartition(a, b NodeID) {
	c.block(a, b, false)
	c.block(b, a, false)
}

// Isolate cuts a node off from every peer.
func (c *Cluster) Isolate(id NodeID) {
	for _, n := range c.nodes {
		if n.id != id {
			c.Partition(id, n.id)
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.blocked = make(map[NodeID]map[NodeID]bool) }

func (c *Cluster) block(a, b NodeID, v bool) {
	if c.blocked[a] == nil {
		c.blocked[a] = make(map[NodeID]bool)
	}
	c.blocked[a][b] = v
}

// send delivers a message after the configured delay unless blocked.
func (c *Cluster) send(from, to NodeID, m message) {
	if c.blocked[from][to] {
		return
	}
	dst := c.nodes[int(to)]
	c.eng.After(c.cfg.MessageDelay, func() { dst.deliver(m) })
}

func (c *Cluster) quorum() int { return len(c.nodes)/2 + 1 }

// Node is one replica.
type Node struct {
	id      NodeID
	cluster *Cluster

	term     uint64
	votedFor NodeID
	role     Role
	log      []Entry
	commit   uint64
	applied  uint64
	down     bool

	votes map[NodeID]bool
	// leader state
	nextIndex  map[NodeID]uint64
	matchIndex map[NodeID]uint64

	electionDeadline sim.Time
	apply            func(node NodeID, e Entry)
}

// ID returns the replica ID.
func (n *Node) ID() NodeID { return n.id }

// Role returns the current role.
func (n *Node) Role() Role { return n.role }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.term }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commit }

// LogLen returns the log length.
func (n *Node) LogLen() int { return len(n.log) }

// EntryAt returns the committed entry at a 1-based index.
func (n *Node) EntryAt(index uint64) (Entry, bool) {
	if index < 1 || index > uint64(len(n.log)) || index > n.commit {
		return Entry{}, false
	}
	return n.log[index-1], true
}

// Crash stops the node: it drops all traffic and timers until Restart.
// The log survives (stable storage).
func (n *Node) Crash() {
	n.down = true
	n.role = Follower
}

// Restart brings a crashed node back as a follower.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.role = Follower
	n.votes = nil
	n.resetElectionTimer()
}

// Propose appends data to the replicated log. Only the leader accepts
// proposals; followers return ErrNotLeader so clients can retry elsewhere.
func (n *Node) Propose(data []byte) (index uint64, err error) {
	if n.down {
		return 0, ErrCrashed
	}
	if n.role != Leader {
		return 0, ErrNotLeader
	}
	e := Entry{Term: n.term, Index: uint64(len(n.log)) + 1, Data: data}
	n.log = append(n.log, e)
	n.matchIndex[n.id] = e.Index
	n.advanceCommit() // a single-node cluster commits immediately
	n.broadcastAppend()
	return e.Index, nil
}

func (n *Node) lastLogIndex() uint64 { return uint64(len(n.log)) }

func (n *Node) lastLogTerm() uint64 {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

func (n *Node) resetElectionTimer() {
	c := n.cluster
	span := int64(c.cfg.ElectionTimeoutMax - c.cfg.ElectionTimeoutMin)
	timeout := c.cfg.ElectionTimeoutMin
	if span > 0 {
		timeout += sim.Time(c.eng.Rand().Int63n(span))
	}
	deadline := c.eng.Now() + timeout
	n.electionDeadline = deadline
	c.eng.At(deadline, func() { n.electionCheck(deadline) })
}

func (n *Node) electionCheck(deadline sim.Time) {
	if n.down || n.role == Leader || n.electionDeadline != deadline {
		return // stale timer or no longer needed
	}
	n.startElection()
}

func (n *Node) startElection() {
	n.term++
	n.role = Candidate
	n.votedFor = n.id
	n.votes = map[NodeID]bool{n.id: true}
	n.resetElectionTimer()
	req := message{
		kind:         msgVoteReq,
		from:         n.id,
		term:         n.term,
		lastLogIndex: n.lastLogIndex(),
		lastLogTerm:  n.lastLogTerm(),
	}
	for _, peer := range n.cluster.nodes {
		if peer.id != n.id {
			n.cluster.send(n.id, peer.id, req)
		}
	}
	if len(n.votes) >= n.cluster.quorum() { // single-node cluster
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.nextIndex = make(map[NodeID]uint64)
	n.matchIndex = make(map[NodeID]uint64)
	for _, peer := range n.cluster.nodes {
		n.nextIndex[peer.id] = n.lastLogIndex() + 1
		n.matchIndex[peer.id] = 0
	}
	n.matchIndex[n.id] = n.lastLogIndex()
	n.heartbeat()
}

func (n *Node) heartbeat() {
	if n.down || n.role != Leader {
		return
	}
	n.broadcastAppend()
	n.cluster.eng.After(n.cluster.cfg.HeartbeatInterval, func() { n.heartbeat() })
}

func (n *Node) broadcastAppend() {
	for _, peer := range n.cluster.nodes {
		if peer.id == n.id {
			continue
		}
		next := n.nextIndex[peer.id]
		if next < 1 {
			next = 1
		}
		prevIndex := next - 1
		var prevTerm uint64
		if prevIndex >= 1 && prevIndex <= uint64(len(n.log)) {
			prevTerm = n.log[prevIndex-1].Term
		}
		var entries []Entry
		if next <= uint64(len(n.log)) {
			entries = append([]Entry(nil), n.log[next-1:]...)
		}
		n.cluster.send(n.id, peer.id, message{
			kind:         msgAppend,
			from:         n.id,
			term:         n.term,
			prevIndex:    prevIndex,
			prevTerm:     prevTerm,
			entries:      entries,
			leaderCommit: n.commit,
		})
	}
}

func (n *Node) stepDown(term uint64) {
	n.term = term
	n.role = Follower
	n.votedFor = -1
	n.votes = nil
	n.resetElectionTimer()
}

func (n *Node) deliver(m message) {
	if n.down {
		return
	}
	if m.term > n.term {
		n.stepDown(m.term)
	}
	switch m.kind {
	case msgVoteReq:
		n.onVoteRequest(m)
	case msgVoteReply:
		n.onVoteReply(m)
	case msgAppend:
		n.onAppend(m)
	case msgAppendReply:
		n.onAppendReply(m)
	}
}

func (n *Node) onVoteRequest(m message) {
	granted := false
	if m.term == n.term && (n.votedFor == -1 || n.votedFor == m.from) {
		// Log recency check: candidate's log must be at least as
		// up-to-date as ours.
		upToDate := m.lastLogTerm > n.lastLogTerm() ||
			(m.lastLogTerm == n.lastLogTerm() && m.lastLogIndex >= n.lastLogIndex())
		if upToDate {
			granted = true
			n.votedFor = m.from
			n.resetElectionTimer()
		}
	}
	n.cluster.send(n.id, m.from, message{kind: msgVoteReply, from: n.id, term: n.term, granted: granted})
}

func (n *Node) onVoteReply(m message) {
	if n.role != Candidate || m.term != n.term || !m.granted {
		return
	}
	n.votes[m.from] = true
	if len(n.votes) >= n.cluster.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) onAppend(m message) {
	if m.term < n.term {
		n.cluster.send(n.id, m.from, message{kind: msgAppendReply, from: n.id, term: n.term, success: false})
		return
	}
	// Valid leader for this term.
	n.role = Follower
	n.resetElectionTimer()
	// Consistency check.
	if m.prevIndex > uint64(len(n.log)) ||
		(m.prevIndex >= 1 && n.log[m.prevIndex-1].Term != m.prevTerm) {
		n.cluster.send(n.id, m.from, message{kind: msgAppendReply, from: n.id, term: n.term, success: false, matchIndex: 0})
		return
	}
	// Append, truncating conflicts.
	for i, e := range m.entries {
		idx := m.prevIndex + uint64(i) + 1
		if idx <= uint64(len(n.log)) {
			if n.log[idx-1].Term != e.Term {
				n.log = n.log[:idx-1]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	match := m.prevIndex + uint64(len(m.entries))
	if m.leaderCommit > n.commit {
		n.commit = min64(m.leaderCommit, uint64(len(n.log)))
		n.applyCommitted()
	}
	n.cluster.send(n.id, m.from, message{kind: msgAppendReply, from: n.id, term: n.term, success: true, matchIndex: match})
}

func (n *Node) onAppendReply(m message) {
	if n.role != Leader || m.term != n.term {
		return
	}
	if !m.success {
		// Back off and retry from earlier in the log.
		if n.nextIndex[m.from] > 1 {
			n.nextIndex[m.from]--
		}
		return
	}
	if m.matchIndex > n.matchIndex[m.from] {
		n.matchIndex[m.from] = m.matchIndex
	}
	n.nextIndex[m.from] = n.matchIndex[m.from] + 1
	n.advanceCommit()
}

// advanceCommit commits the highest index replicated on a quorum whose
// entry belongs to the current term.
func (n *Node) advanceCommit() {
	matches := make([]uint64, 0, len(n.cluster.nodes))
	for _, peer := range n.cluster.nodes {
		matches = append(matches, n.matchIndex[peer.id])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.cluster.quorum()-1]
	if candidate > n.commit && candidate <= uint64(len(n.log)) &&
		n.log[candidate-1].Term == n.term {
		n.commit = candidate
		n.applyCommitted()
		n.broadcastAppend() // propagate the new commit index promptly
	}
}

func (n *Node) applyCommitted() {
	for n.applied < n.commit {
		n.applied++
		if n.apply != nil {
			n.apply(n.id, n.log[n.applied-1])
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
