package flowsim

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSingleFlowSingleLink(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100) // 100 bps
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{l}, Size: 1000}
	s.Add(f)
	s.Run()
	if !f.Finished || !approx(f.End, 10, 1e-9) {
		t.Fatalf("end = %v finished=%v", f.End, f.Finished)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	f1 := &Flow{ID: 1, Path: []LinkID{l}, Size: 500}
	f2 := &Flow{ID: 2, Path: []LinkID{l}, Size: 500}
	s.Add(f1)
	s.Add(f2)
	s.Run()
	// Both run at 50 bps until both finish at t=10.
	if !approx(f1.End, 10, 1e-9) || !approx(f2.End, 10, 1e-9) {
		t.Fatalf("ends = %v %v", f1.End, f2.End)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	long := &Flow{ID: 1, Path: []LinkID{l}, Size: 1000}
	short := &Flow{ID: 2, Path: []LinkID{l}, Size: 100}
	s.Add(long)
	s.Add(short)
	s.Run()
	// Share 50/50 until short finishes at t=2 (100 bits at 50 bps), then
	// long runs at 100: 1000-2*50=900 remaining → 9 s more → t=11.
	if !approx(short.End, 2, 1e-9) {
		t.Fatalf("short end = %v", short.End)
	}
	if !approx(long.End, 11, 1e-9) {
		t.Fatalf("long end = %v", long.End)
	}
}

func TestMaxMinClassic(t *testing.T) {
	// l1 cap 1, l2 cap 2; flows: A=[l1], B=[l1,l2], C=[l2].
	// Progressive filling: l1 share 0.5 fixes A,B; l2 remaining 1.5 → C.
	n := NewNetwork()
	l1 := n.AddLink(1)
	l2 := n.AddLink(2)
	s := NewSimulator(n)
	a := &Flow{ID: 1, Path: []LinkID{l1}, Size: 1e9}
	b := &Flow{ID: 2, Path: []LinkID{l1, l2}, Size: 1e9}
	c := &Flow{ID: 3, Path: []LinkID{l2}, Size: 1e9}
	s.Add(a)
	s.Add(b)
	s.Add(c)
	if r := s.RateOf(a); !approx(r, 0.5, 1e-9) {
		t.Fatalf("rate A = %v", r)
	}
	if r := s.RateOf(b); !approx(r, 0.5, 1e-9) {
		t.Fatalf("rate B = %v", r)
	}
	if r := s.RateOf(c); !approx(r, 1.5, 1e-9) {
		t.Fatalf("rate C = %v", r)
	}
}

func TestRateCap(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	capped := &Flow{ID: 1, Path: []LinkID{l}, Size: 1e6, RateCap: 10}
	free := &Flow{ID: 2, Path: []LinkID{l}, Size: 1e6}
	s.Add(capped)
	s.Add(free)
	if r := s.RateOf(capped); !approx(r, 10, 1e-9) {
		t.Fatalf("capped rate = %v", r)
	}
	if r := s.RateOf(free); !approx(r, 90, 1e-9) {
		t.Fatalf("free rate = %v", r)
	}
}

func TestLateArrival(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	early := &Flow{ID: 1, Path: []LinkID{l}, Size: 1000}
	late := &Flow{ID: 2, Path: []LinkID{l}, Size: 100, Start: 5}
	s.Add(early)
	s.Add(late)
	s.Run()
	// Early runs alone 0-5 (500 bits), then shares 50/50. Late finishes
	// 100 bits at 50 bps → t=7. Early: 500 left, 100 done during share
	// (2s*50) → 400 left at t=7 at 100 bps → t=11.
	if !approx(late.End, 7, 1e-9) {
		t.Fatalf("late end = %v", late.End)
	}
	if !approx(early.End, 11, 1e-9) {
		t.Fatalf("early end = %v", early.End)
	}
}

func TestRerouteAction(t *testing.T) {
	n := NewNetwork()
	slow := n.AddLink(10)
	fast := n.AddLink(1000)
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{slow}, Size: 1000}
	s.Add(f)
	// After 10 s (100 bits done), reroute to the fast link: 900 bits at
	// 1000 bps → finishes at 10.9 s.
	s.At(10, func() { s.Reroute(f, []LinkID{fast}) })
	s.Run()
	if !approx(f.End, 10.9, 1e-6) {
		t.Fatalf("end = %v", f.End)
	}
}

func TestLinkFailureViaCapacity(t *testing.T) {
	n := NewNetwork()
	l1 := n.AddLink(100)
	l2 := n.AddLink(100)
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{l1}, Size: 1000}
	s.Add(f)
	// At t=2 the link fails; at t=3 the flow fails over to l2.
	s.At(2, func() { n.SetCapacity(l1, 0) })
	s.At(3, func() { s.Reroute(f, []LinkID{l2}) })
	s.Run()
	// 200 bits before failure, stalled 1 s, 800 bits at 100 bps → t=11.
	if !approx(f.End, 11, 1e-6) {
		t.Fatalf("end = %v", f.End)
	}
}

func TestRunUntilPartial(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{l}, Size: 1000}
	s.Add(f)
	s.RunUntil(5)
	if f.Finished {
		t.Fatal("finished too early")
	}
	if !approx(f.Remaining(), 500, 1e-6) {
		t.Fatalf("remaining = %v", f.Remaining())
	}
	if !approx(s.Now(), 5, 1e-9) {
		t.Fatalf("now = %v", s.Now())
	}
	s.Run()
	if !f.Finished || s.AllDone() != true {
		t.Fatal("did not finish")
	}
}

func TestOnFinishCallback(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	var finished []int
	s.OnFinish = func(f *Flow, now float64) { finished = append(finished, f.ID) }
	s.Add(&Flow{ID: 1, Path: []LinkID{l}, Size: 100})
	s.Add(&Flow{ID: 2, Path: []LinkID{l}, Size: 200})
	s.Run()
	if len(finished) != 2 || finished[0] != 1 || finished[1] != 2 {
		t.Fatalf("finished = %v", finished)
	}
}

func TestPathlessFlowInstant(t *testing.T) {
	s := NewSimulator(NewNetwork())
	f := &Flow{ID: 1, Size: 1000}
	s.Add(f)
	s.Run()
	if !f.Finished || f.End != 0 {
		t.Fatalf("pathless flow end = %v", f.End)
	}
}

func TestDuplicateLinkInPathCountedOnce(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{l, l}, Size: 1000}
	s.Add(f)
	if r := s.RateOf(f); !approx(r, 100, 1e-9) {
		t.Fatalf("rate = %v (duplicate link double-counted)", r)
	}
}

// Property: allocation never exceeds any link capacity and is work-
// conserving on the bottleneck.
func TestAllocationFeasibilityProperty(t *testing.T) {
	prop := func(sizes []uint16, paths []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 12 || len(paths) == 0 {
			return true
		}
		n := NewNetwork()
		links := []LinkID{n.AddLink(100), n.AddLink(50), n.AddLink(200)}
		s := NewSimulator(n)
		var flows []*Flow
		for i, sz := range sizes {
			p := []LinkID{links[int(paths[i%len(paths)]%3)]}
			if i%3 == 0 {
				p = append(p, links[(i+1)%3])
			}
			f := &Flow{ID: i, Path: p, Size: float64(sz%1000) + 1}
			flows = append(flows, f)
			s.Add(f)
		}
		s.allocate()
		load := make([]float64, 3)
		for _, f := range flows {
			seen := map[LinkID]bool{}
			for _, l := range f.Path {
				if !seen[l] {
					seen[l] = true
					load[int(l)] += f.rate
				}
			}
		}
		for i, l := range load {
			if l > n.Capacity(LinkID(i))+1e-6 {
				return false
			}
		}
		// Every flow gets a positive rate.
		for _, f := range flows {
			if f.rate <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
