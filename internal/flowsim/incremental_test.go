package flowsim

import (
	"math"
	"math/rand"
	"testing"
)

// TestIncrementalMatchesOracle drives randomized event sequences (adds,
// reroutes, capacity flaps, time advances) and after every event compares
// the incremental component-restricted waterfill against the brute-force
// full progressive-filling pass. Rates must be BIT-identical: max-min
// allocation decomposes over connected components of the flow↔link
// sharing graph, and the incremental path replays the exact per-component
// fix sequence of the full pass.
func TestIncrementalMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork()
		nLinks := 12
		baseCap := make([]float64, nLinks)
		for i := 0; i < nLinks; i++ {
			baseCap[i] = float64(rng.Intn(9)+1) * 25
			n.AddLink(baseCap[i])
		}
		s := NewSimulator(n)
		var live []*Flow
		nextID := 0

		randPath := func() []LinkID {
			hops := rng.Intn(4) + 1
			p := make([]LinkID, hops)
			for i := range p {
				p[i] = LinkID(rng.Intn(nLinks))
			}
			if rng.Intn(5) == 0 { // duplicate a link on purpose
				p = append(p, p[0])
			}
			return p
		}

		check := func(step int) {
			s.settle()
			type snap struct {
				f *Flow
				r uint64
			}
			var snaps []snap
			for _, f := range s.active {
				snaps = append(snaps, snap{f, math.Float64bits(f.rate)})
			}
			s.allocate() // oracle: full recompute from scratch
			for _, sn := range snaps {
				if got := math.Float64bits(sn.f.rate); got != sn.r {
					t.Fatalf("seed %d step %d flow %d: incremental rate %x (%v) != oracle %x (%v)",
						seed, step, sn.f.ID, sn.r, math.Float64frombits(sn.r), got, sn.f.rate)
				}
			}
		}

		for step := 0; step < 250; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // add a flow
				f := &Flow{
					ID:   nextID,
					Path: randPath(),
					Size: float64(rng.Intn(5000) + 500),
				}
				nextID++
				if rng.Intn(5) == 0 {
					f.RateCap = float64(rng.Intn(40) + 1)
				}
				if rng.Intn(12) == 0 {
					f.Path = nil // pathless
				}
				if rng.Intn(6) == 0 {
					f.Start = s.Now() + rng.Float64()*0.5
				}
				live = append(live, f)
				s.Add(f)
			case op < 6: // reroute a live flow
				if len(live) == 0 {
					continue
				}
				f := live[rng.Intn(len(live))]
				if f.Finished {
					continue
				}
				s.Reroute(f, randPath())
			case op < 8: // capacity flap
				l := LinkID(rng.Intn(nLinks))
				if rng.Intn(3) == 0 {
					n.SetCapacity(l, 0)
				} else {
					n.SetCapacity(l, baseCap[int(l)]*(0.5+rng.Float64()))
				}
			default: // advance time
				s.RunUntil(s.Now() + rng.Float64()*2)
			}
			check(step)
		}
		s.Run()
	}
}

// TestActionHeapAllocFree guards the de-boxed action heap: scheduling and
// draining actions through a pre-grown heap must not allocate (the old
// container/heap implementation boxed one allocation per Push/Pop).
func TestActionHeapAllocFree(t *testing.T) {
	s := NewSimulator(NewNetwork())
	for i := 0; i < 1024; i++ {
		s.At(float64(i)*1e-3, func() {})
	}
	s.RunUntil(10)
	fn := func() {}
	allocs := testing.AllocsPerRun(200, func() {
		s.At(s.Now(), fn)
		s.RunUntil(s.Now())
	})
	if allocs != 0 {
		t.Fatalf("action schedule+drain allocates %v/op, want 0", allocs)
	}
}

// TestRerouteOntoSaturatedPath moves a flow onto a link already running at
// capacity: both flows must drop to the fair share at the reroute instant.
func TestRerouteOntoSaturatedPath(t *testing.T) {
	n := NewNetwork()
	l1 := n.AddLink(100)
	l2 := n.AddLink(50)
	s := NewSimulator(n)
	incumbent := &Flow{ID: 1, Path: []LinkID{l1}, Size: 1e4}
	mover := &Flow{ID: 2, Path: []LinkID{l2}, Size: 1e4}
	s.Add(incumbent)
	s.Add(mover)
	if r := s.RateOf(incumbent); !approx(r, 100, 1e-9) {
		t.Fatalf("incumbent pre-reroute rate = %v", r)
	}
	s.At(1, func() { s.Reroute(mover, []LinkID{l1}) })
	s.RunUntil(1)
	if r := s.RateOf(incumbent); !approx(r, 50, 1e-9) {
		t.Fatalf("incumbent post-reroute rate = %v", r)
	}
	if r := s.RateOf(mover); !approx(r, 50, 1e-9) {
		t.Fatalf("mover post-reroute rate = %v", r)
	}
	s.Run()
	// incumbent: 100 bits/s·1s + 50 thereafter → (1e4-100)/50 + 1 = 199 s.
	if !approx(incumbent.End, 199, 1e-6) {
		t.Fatalf("incumbent end = %v", incumbent.End)
	}
}

// TestSetCapacityZeroStallsAndHeals fails a link mid-flight (capacity 0),
// verifies the flow stalls at rate 0 making no progress, then heals the
// link and checks the completion time accounts for the outage exactly.
func TestSetCapacityZeroStallsAndHeals(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{l}, Size: 1000}
	s.Add(f)
	s.At(3, func() { n.SetCapacity(l, 0) })
	s.RunUntil(5)
	if r := s.RateOf(f); r != 0 {
		t.Fatalf("rate during outage = %v, want 0", r)
	}
	if rem := f.Remaining(); !approx(rem, 700, 1e-6) {
		t.Fatalf("remaining during outage = %v, want 700", rem)
	}
	s.At(6, func() { n.SetCapacity(l, 100) })
	s.Run()
	// 300 bits in [0,3), stalled [3,6), 700 bits at 100 bps → t=13.
	if !f.Finished || !approx(f.End, 13, 1e-6) {
		t.Fatalf("end = %v finished=%v", f.End, f.Finished)
	}
}

// TestFinishAtRecomputeInstant schedules a capacity change at the exact
// instant a flow completes: the completion must win (End at that instant,
// reported once) and the recompute must apply to the survivors only.
func TestFinishAtRecomputeInstant(t *testing.T) {
	n := NewNetwork()
	l := n.AddLink(100)
	s := NewSimulator(n)
	done := 0
	s.OnFinish = func(f *Flow, now float64) { done++ }
	short := &Flow{ID: 1, Path: []LinkID{l}, Size: 500}
	long := &Flow{ID: 2, Path: []LinkID{l}, Size: 5000}
	s.Add(short)
	s.Add(long)
	// Both at 50 bps; short finishes at exactly t=10. Halve the link
	// capacity at the same instant.
	s.At(10, func() { n.SetCapacity(l, 50) })
	s.Run()
	if !approx(short.End, 10, 1e-9) || done != 2 {
		t.Fatalf("short end = %v, done = %d", short.End, done)
	}
	// long: 500 bits by t=10, then alone on a 50 bps link → 4500/50 = 90 s
	// more → t=100.
	if !approx(long.End, 100, 1e-6) {
		t.Fatalf("long end = %v", long.End)
	}
}

// TestRerouteAtCompletionInstant reroutes a flow at the exact instant it
// completes: the completion must not be lost or doubled.
func TestRerouteAtCompletionInstant(t *testing.T) {
	n := NewNetwork()
	l1 := n.AddLink(100)
	l2 := n.AddLink(100)
	s := NewSimulator(n)
	f := &Flow{ID: 1, Path: []LinkID{l1}, Size: 1000}
	s.Add(f)
	done := 0
	s.OnFinish = func(ff *Flow, now float64) { done++ }
	s.At(10, func() {
		if !f.Finished {
			s.Reroute(f, []LinkID{l2})
		}
	})
	s.Run()
	if done != 1 || !f.Finished {
		t.Fatalf("done = %d finished = %v", done, f.Finished)
	}
	if !approx(f.End, 10, 1e-6) {
		t.Fatalf("end = %v", f.End)
	}
}
