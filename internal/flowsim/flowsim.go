// Package flowsim is a flow-level network simulator: flows traverse
// capacitated links and receive max-min fair bandwidth; the simulator
// advances between flow arrivals, completions and scheduled actions
// (reroutes, failures). The paper's long-running throughput experiments —
// leaf-to-leaf aggregates, failure-recovery timelines, and the HiBench
// macro-benchmarks — run here, where packet-level simulation would be
// needlessly expensive.
package flowsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinkID indexes a directed capacitated link.
type LinkID int

// Network is the capacity graph.
type Network struct {
	capacity []float64 // bits/sec per link
}

// NewNetwork creates an empty network.
func NewNetwork() *Network { return &Network{} }

// AddLink registers a link with the given capacity (bits/sec) and returns
// its ID.
func (n *Network) AddLink(capacityBps float64) LinkID {
	n.capacity = append(n.capacity, capacityBps)
	return LinkID(len(n.capacity) - 1)
}

// NumLinks reports the number of links.
func (n *Network) NumLinks() int { return len(n.capacity) }

// Capacity returns a link's capacity.
func (n *Network) Capacity(l LinkID) float64 { return n.capacity[int(l)] }

// SetCapacity changes a link's capacity (e.g. to 0 on failure). Callers
// should follow with Simulator.Reallocate via a scheduled action.
func (n *Network) SetCapacity(l LinkID, capacityBps float64) { n.capacity[int(l)] = capacityBps }

// Flow is one transfer.
type Flow struct {
	ID      int
	Path    []LinkID // links traversed (order irrelevant to allocation)
	Size    float64  // bits to transfer
	Start   float64  // arrival time, seconds
	RateCap float64  // optional per-flow cap (e.g. NIC speed); 0 = none

	// Results, valid after the flow finishes.
	Finished bool
	End      float64

	remaining float64
	rate      float64
	active    bool
}

// Rate returns the flow's current allocation (bits/sec).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns unsent bits.
func (f *Flow) Remaining() float64 { return f.remaining }

// Duration is the flow completion time in seconds.
func (f *Flow) Duration() float64 { return f.End - f.Start }

// ErrNegativeTime guards against scheduling in the past.
var ErrNegativeTime = errors.New("flowsim: action scheduled in the past")

type action struct {
	at  float64
	seq int
	fn  func()
}

type actionHeap []action

func (h actionHeap) Len() int { return len(h) }
func (h actionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h actionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *actionHeap) Push(x any)   { *h = append(*h, x.(action)) }
func (h *actionHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	*h = old[:n-1]
	return a
}

// Simulator advances flows through time.
type Simulator struct {
	net     *Network
	now     float64
	flows   []*Flow
	active  []*Flow // incrementally maintained: started, unfinished
	actions actionHeap
	seq     int

	// OnFinish is invoked as each flow completes.
	OnFinish func(f *Flow, now float64)
}

// NewSimulator creates a simulator over the network.
func NewSimulator(net *Network) *Simulator { return &Simulator{net: net} }

// Now returns current simulation time (seconds).
func (s *Simulator) Now() float64 { return s.now }

// Add registers a flow; its Start may be now or in the future.
func (s *Simulator) Add(f *Flow) {
	f.remaining = f.Size
	s.flows = append(s.flows, f)
	if f.Start > s.now {
		start := f.Start
		s.At(start, func() { s.activate(f) })
	} else {
		f.Start = s.now
		s.activate(f)
	}
}

func (s *Simulator) activate(f *Flow) {
	if f.active || f.Finished {
		return
	}
	f.active = true
	s.active = append(s.active, f)
}

// At schedules fn at absolute time t (clamped to now).
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.actions, action{at: t, seq: s.seq, fn: fn})
}

// Reroute atomically changes a flow's path (the flowlet/failover move).
func (s *Simulator) Reroute(f *Flow, path []LinkID) {
	f.Path = append([]LinkID(nil), path...)
}

// activeFlows returns flows currently transferring. The slice is owned by
// the simulator; callers must not retain it across events.
func (s *Simulator) activeFlows() []*Flow { return s.active }

// allocate computes max-min fair rates by progressive filling. The loop is
// O((links + capped flows) · links) with incremental per-link bookkeeping,
// so thousand-flow shuffles stay tractable.
func (s *Simulator) allocate() {
	active := s.activeFlows()
	for _, f := range active {
		f.rate = 0
	}
	if len(active) == 0 {
		return
	}
	nLinks := len(s.net.capacity)
	remCap := make([]float64, nLinks)
	copy(remCap, s.net.capacity)
	nUnfixed := make([]int, nLinks)
	flowsOn := make([][]*Flow, nLinks)
	fixed := make(map[*Flow]bool, len(active))
	// uniqueLinks caches each flow's deduplicated path.
	uniqueLinks := make(map[*Flow][]LinkID, len(active))

	var capped []*Flow
	unfixedTotal := 0
	for _, f := range active {
		links := f.Path
		if len(links) > 1 {
			seen := make(map[LinkID]bool, len(links))
			dedup := make([]LinkID, 0, len(links))
			for _, l := range links {
				if !seen[l] {
					seen[l] = true
					dedup = append(dedup, l)
				}
			}
			links = dedup
		}
		uniqueLinks[f] = links
		if len(links) == 0 && f.RateCap <= 0 {
			// Pathless, uncapped: completes at an effectively infinite
			// rate.
			f.rate = math.Inf(1)
			continue
		}
		for _, l := range links {
			flowsOn[int(l)] = append(flowsOn[int(l)], f)
			nUnfixed[int(l)]++
		}
		if f.RateCap > 0 {
			capped = append(capped, f)
		}
		unfixedTotal++
	}
	sort.Slice(capped, func(i, j int) bool {
		if capped[i].RateCap != capped[j].RateCap {
			return capped[i].RateCap < capped[j].RateCap
		}
		return capped[i].ID < capped[j].ID
	})
	capIdx := 0

	fix := func(f *Flow, rate float64) {
		if fixed[f] {
			return
		}
		fixed[f] = true
		f.rate = rate
		unfixedTotal--
		for _, l := range uniqueLinks[f] {
			remCap[int(l)] -= rate
			if remCap[int(l)] < 0 {
				remCap[int(l)] = 0
			}
			nUnfixed[int(l)]--
		}
	}

	for unfixedTotal > 0 {
		minShare := math.Inf(1)
		minLink := -1
		for l := 0; l < nLinks; l++ {
			if nUnfixed[l] == 0 {
				continue
			}
			share := remCap[l] / float64(nUnfixed[l])
			if share < minShare {
				minShare, minLink = share, l
			}
		}
		for capIdx < len(capped) && fixed[capped[capIdx]] {
			capIdx++
		}
		if capIdx < len(capped) && capped[capIdx].RateCap < minShare {
			fix(capped[capIdx], capped[capIdx].RateCap)
			continue
		}
		if minLink < 0 {
			// Remaining flows (capped, pathless) are unconstrained by
			// links: give them their caps.
			for _, f := range capped {
				if !fixed[f] {
					fix(f, f.RateCap)
				}
			}
			break
		}
		for _, f := range flowsOn[minLink] {
			fix(f, minShare)
		}
	}
}

// advance moves time forward by dt, draining active flows.
func (s *Simulator) advance(dt float64) {
	for _, f := range s.activeFlows() {
		if math.IsInf(f.rate, 1) {
			f.remaining = 0
			continue
		}
		f.remaining -= f.rate * dt
		if f.remaining < 1e-6 {
			f.remaining = 0
		}
	}
	s.now += dt
}

// finishDone marks and reports completed flows. Flows at infinite rate
// (pathless, uncapped) complete instantly, and flows whose residual would
// drain in under a picosecond are treated as done — their completion time
// is below the representable resolution of float64 time, and waiting on
// them would stall the clock.
func (s *Simulator) finishDone() {
	kept := s.active[:0]
	var done []*Flow
	for _, f := range s.active {
		if math.IsInf(f.rate, 1) || (f.rate > 0 && f.remaining/f.rate < 1e-12) {
			f.remaining = 0
		}
		if f.remaining <= 0 {
			f.Finished = true
			f.active = false
			f.End = s.now
			done = append(done, f)
		} else {
			kept = append(kept, f)
		}
	}
	s.active = kept
	if s.OnFinish != nil {
		// Callbacks run after the list is consistent: they may Add flows.
		for _, f := range done {
			s.OnFinish(f, s.now)
		}
	}
}

// step executes until the next event; returns false when nothing remains.
func (s *Simulator) step(deadline float64) bool {
	s.allocate()
	s.finishDone()
	s.allocate()

	// Next completion time.
	nextDone := math.Inf(1)
	for _, f := range s.activeFlows() {
		if f.rate > 0 {
			t := s.now + f.remaining/f.rate
			if t < nextDone {
				nextDone = t
			}
		} else if math.IsInf(f.rate, 1) {
			nextDone = s.now
		}
	}
	nextAction := math.Inf(1)
	if len(s.actions) > 0 {
		nextAction = s.actions[0].at
	}
	next := math.Min(nextDone, nextAction)
	if math.IsInf(next, 1) || next > deadline {
		if deadline > s.now && !math.IsInf(deadline, 1) {
			s.advance(deadline - s.now)
			s.finishDone()
		}
		return false
	}
	if next > s.now {
		s.advance(next - s.now)
	}
	// Run all actions due now.
	for len(s.actions) > 0 && s.actions[0].at <= s.now+1e-12 {
		a := heap.Pop(&s.actions).(action)
		a.fn()
	}
	s.finishDone()
	return true
}

// Run executes until all flows finish and no actions remain.
func (s *Simulator) Run() {
	// The spin guard catches any future zero-progress loop (e.g. a float
	// pathology) instead of hanging the caller.
	spins := 0
	last := s.now
	for s.step(math.Inf(1)) {
		if s.now == last {
			spins++
			if spins > 1_000_000 {
				var diag string
				for _, f := range s.activeFlows() {
					diag += fmt.Sprintf(" flow%d rate=%v rem=%v", f.ID, f.rate, f.remaining)
					if len(diag) > 200 {
						break
					}
				}
				panic(fmt.Sprintf("flowsim: stuck at t=%v actions=%d:%s", s.now, len(s.actions), diag))
			}
		} else {
			spins, last = 0, s.now
		}
	}
}

// RunUntil executes events up to time t, then advances the clock to t.
func (s *Simulator) RunUntil(t float64) {
	for s.step(t) {
	}
	if s.now < t {
		s.now = t
	}
}

// AllDone reports whether every flow has finished.
func (s *Simulator) AllDone() bool {
	for _, f := range s.flows {
		if !f.Finished {
			return false
		}
	}
	return true
}

// RateOf returns a flow's instantaneous rate after the latest allocation.
func (s *Simulator) RateOf(f *Flow) float64 {
	s.allocate()
	return f.rate
}

// String summarizes simulator state.
func (s *Simulator) String() string {
	done := 0
	for _, f := range s.flows {
		if f.Finished {
			done++
		}
	}
	return fmt.Sprintf("flowsim t=%.3fs %d/%d flows done", s.now, done, len(s.flows))
}
