// Package flowsim is a flow-level network simulator: flows traverse
// capacitated links and receive max-min fair bandwidth; the simulator
// advances between flow arrivals, completions and scheduled actions
// (reroutes, failures). The paper's long-running throughput experiments —
// leaf-to-leaf aggregates, failure-recovery timelines, and the HiBench
// macro-benchmarks — run here, where packet-level simulation would be
// needlessly expensive.
//
// Rate recomputation is incremental: every mutation (flow add/finish,
// reroute, capacity change) dirties the links it touches, and settle()
// re-waterfills only the connected component of the flow↔link sharing
// graph reachable from the dirty links. Max-min fair allocation
// decomposes exactly over these components, so flows outside the
// closure keep bit-identical rates; allocate() retains the classic
// full progressive-filling pass as the brute-force oracle the
// incremental path is tested against.
package flowsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinkID indexes a directed capacitated link.
type LinkID int

// Network is the capacity graph.
type Network struct {
	capacity []float64 // bits/sec per link
	onSet    []func(LinkID)
}

// NewNetwork creates an empty network.
func NewNetwork() *Network { return &Network{} }

// AddLink registers a link with the given capacity (bits/sec) and returns
// its ID.
func (n *Network) AddLink(capacityBps float64) LinkID {
	n.capacity = append(n.capacity, capacityBps)
	return LinkID(len(n.capacity) - 1)
}

// NumLinks reports the number of links.
func (n *Network) NumLinks() int { return len(n.capacity) }

// Capacity returns a link's capacity.
func (n *Network) Capacity(l LinkID) float64 { return n.capacity[int(l)] }

// SetCapacity changes a link's capacity (e.g. to 0 on failure). Attached
// simulators are notified and re-waterfill the affected component at the
// next settle point.
func (n *Network) SetCapacity(l LinkID, capacityBps float64) {
	n.capacity[int(l)] = capacityBps
	for _, fn := range n.onSet {
		fn(l)
	}
}

// Flow is one transfer.
type Flow struct {
	ID      int
	Path    []LinkID // links traversed (order irrelevant to allocation)
	Size    float64  // bits to transfer
	Start   float64  // arrival time, seconds
	RateCap float64  // optional per-flow cap (e.g. NIC speed); 0 = none

	// Results, valid after the flow finishes.
	Finished bool
	End      float64

	// remaining is the unsent volume at time upd; it is drained lazily,
	// only when the flow's rate changes, so advancing the clock is O(1)
	// in the number of active flows.
	remaining float64
	upd       float64
	rate      float64
	active    bool

	sim       *Simulator
	uniq      []LinkID // deduplicated Path, first-occurrence order
	aseq      int64    // activation sequence: per-link lists sort by this
	ver       int32    // invalidates stale finish-heap entries
	activeIdx int      // position in Simulator.active (swap-remove)
	fixed     bool     // scratch: waterfill fixed-flow flag
	mark      int64    // scratch: closure-visited epoch
}

// Rate returns the flow's current allocation (bits/sec).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns unsent bits at the simulator's current time.
func (f *Flow) Remaining() float64 {
	if f.Finished {
		return 0
	}
	rem := f.remaining
	if f.sim != nil && f.active && f.rate > 0 && !math.IsInf(f.rate, 1) {
		if dt := f.sim.now - f.upd; dt > 0 {
			rem -= f.rate * dt
			if rem < 0 {
				rem = 0
			}
		}
	}
	return rem
}

// Duration is the flow completion time in seconds.
func (f *Flow) Duration() float64 { return f.End - f.Start }

// ErrNegativeTime guards against scheduling in the past.
var ErrNegativeTime = errors.New("flowsim: action scheduled in the past")

type action struct {
	at  float64
	seq int64
	fn  func()
}

// actionHeap is a concrete-typed binary min-heap ordered by (at, seq).
// It deliberately avoids container/heap: the interface's Push/Pop go
// through `any`, which boxes one allocation per scheduled action.
type actionHeap []action

func (h actionHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *actionHeap) push(a action) {
	*h = append(*h, a)
	h.up(len(*h) - 1)
}

func (h *actionHeap) pop() action {
	old := *h
	a := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = action{} // release fn for GC
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return a
}

func (h actionHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h actionHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// finEntry is a projected flow completion. Entries are invalidated rather
// than removed when a flow's rate changes: ver must match the flow's
// current version for the entry to count.
type finEntry struct {
	at   float64
	aseq int64
	ver  int32
	f    *Flow
}

type finHeap []finEntry

func (h finHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].aseq < h[j].aseq
}

func (h *finHeap) push(e finEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *finHeap) pop() finEntry {
	old := *h
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = finEntry{}
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return e
}

func (h finHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h finHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Simulator advances flows through time.
type Simulator struct {
	net     *Network
	now     float64
	flows   []*Flow
	active  []*Flow // unordered (swap-remove); sort by aseq when order matters
	actions actionHeap
	fins    finHeap
	seq     int64
	aseqCtr int64

	// linkFlows[l] holds the active flows traversing link l, ordered by
	// activation sequence — the same order the oracle's progressive
	// filling builds its per-link lists in, which is what makes the
	// incremental waterfill bit-identical.
	linkFlows [][]*Flow

	dirty     []LinkID
	linkDirty []bool

	// Scratch reused across settle calls.
	epoch     int64
	linkMark  []int64
	remCap    []float64
	nUnfixed  []int32
	linkVer   []uint32 // bumped whenever a link's remCap/nUnfixed changes
	shares    shareHeap
	compLinks []LinkID
	compFlows []*Flow
	capped    []*Flow
	done      []*Flow

	// OnFinish is invoked as each flow completes.
	OnFinish func(f *Flow, now float64)

	// DebugSettles / DebugSettleFlows count non-trivial settle passes and
	// the flows they re-rated (profiling aid; no functional effect).
	DebugSettles     uint64
	DebugSettleFlows uint64
}

// NewSimulator creates a simulator over the network.
func NewSimulator(net *Network) *Simulator {
	s := &Simulator{net: net}
	net.onSet = append(net.onSet, func(l LinkID) {
		s.ensureLink(int(l))
		s.markDirty(l)
	})
	return s
}

// Now returns current simulation time (seconds).
func (s *Simulator) Now() float64 { return s.now }

func (s *Simulator) ensureLink(l int) {
	for len(s.linkFlows) <= l {
		s.linkFlows = append(s.linkFlows, nil)
		s.linkDirty = append(s.linkDirty, false)
		s.linkMark = append(s.linkMark, 0)
		s.remCap = append(s.remCap, 0)
		s.nUnfixed = append(s.nUnfixed, 0)
		s.linkVer = append(s.linkVer, 0)
	}
}

func (s *Simulator) markDirty(l LinkID) {
	if !s.linkDirty[int(l)] {
		s.linkDirty[int(l)] = true
		s.dirty = append(s.dirty, l)
	}
}

// Add registers a flow; its Start may be now or in the future.
func (s *Simulator) Add(f *Flow) {
	f.sim = s
	f.remaining = f.Size
	s.flows = append(s.flows, f)
	if f.Start > s.now {
		start := f.Start
		s.At(start, func() { s.activate(f) })
	} else {
		f.Start = s.now
		s.activate(f)
	}
}

func dedupInto(dst, path []LinkID) []LinkID {
	for _, l := range path {
		dup := false
		for _, d := range dst {
			if d == l {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, l)
		}
	}
	return dst
}

func (s *Simulator) activate(f *Flow) {
	if f.active || f.Finished {
		return
	}
	f.active = true
	s.aseqCtr++
	f.aseq = s.aseqCtr
	f.upd = s.now
	f.activeIdx = len(s.active)
	s.active = append(s.active, f)
	f.uniq = dedupInto(f.uniq[:0], f.Path)
	if len(f.uniq) == 0 {
		// Pathless: uncapped flows complete at an effectively infinite
		// rate; capped ones at exactly their cap. These form singleton
		// components, so no waterfill is needed (the oracle's
		// progressive filling assigns the identical values).
		if f.RateCap > 0 {
			f.rate = f.RateCap
		} else {
			f.rate = math.Inf(1)
		}
		f.ver++
		s.pushFin(f)
		return
	}
	for _, l := range f.uniq {
		s.ensureLink(int(l))
		s.linkFlows[int(l)] = append(s.linkFlows[int(l)], f) // max aseq: append keeps order
		s.markDirty(l)
	}
}

// removeFromLink deletes f from link l's list, preserving order. The list
// is aseq-sorted, so binary search finds the position.
func (s *Simulator) removeFromLink(l LinkID, f *Flow) {
	lst := s.linkFlows[int(l)]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].aseq >= f.aseq })
	if i < len(lst) && lst[i] == f {
		copy(lst[i:], lst[i+1:])
		lst[len(lst)-1] = nil
		s.linkFlows[int(l)] = lst[:len(lst)-1]
	}
}

// insertIntoLink adds f to link l's list at its aseq position.
func (s *Simulator) insertIntoLink(l LinkID, f *Flow) {
	lst := s.linkFlows[int(l)]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].aseq >= f.aseq })
	lst = append(lst, nil)
	copy(lst[i+1:], lst[i:])
	lst[i] = f
	s.linkFlows[int(l)] = lst
}

// At schedules fn at absolute time t (clamped to now).
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.actions.push(action{at: t, seq: s.seq, fn: fn})
}

// Reroute atomically changes a flow's path (the flowlet/failover move).
func (s *Simulator) Reroute(f *Flow, path []LinkID) {
	f.Path = append([]LinkID(nil), path...)
	if !f.active {
		return // not yet started (or finished): activation reads Path
	}
	for _, l := range f.uniq {
		s.removeFromLink(l, f)
		s.markDirty(l)
	}
	f.uniq = dedupInto(f.uniq[:0], f.Path)
	if len(f.uniq) == 0 {
		s.drain(f)
		if f.RateCap > 0 {
			f.rate = f.RateCap
		} else {
			f.rate = math.Inf(1)
		}
		f.ver++
		s.pushFin(f)
		return
	}
	for _, l := range f.uniq {
		s.ensureLink(int(l))
		s.insertIntoLink(l, f)
		s.markDirty(l)
	}
}

// drain charges a flow's lazily-accounted progress up to the current time.
// It must run before the flow's rate changes.
func (s *Simulator) drain(f *Flow) {
	if dt := s.now - f.upd; dt > 0 && f.rate > 0 {
		if math.IsInf(f.rate, 1) {
			f.remaining = 0
		} else {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-6 {
				f.remaining = 0
			}
		}
	}
	f.upd = s.now
}

// pushFin projects the flow's completion under its current rate. Residuals
// draining in under a picosecond complete now: their finish time is below
// float64 time resolution and waiting on them would stall the clock.
func (s *Simulator) pushFin(f *Flow) {
	if f.rate <= 0 && !math.IsInf(f.rate, 1) {
		return // stalled: a future re-rate will re-project
	}
	at := s.now
	if !math.IsInf(f.rate, 1) {
		if d := f.remaining / f.rate; d >= 1e-12 {
			at = s.now + d
		}
	}
	s.fins.push(finEntry{at: at, aseq: f.aseq, ver: f.ver, f: f})
}

// settle re-waterfills the connected component(s) of the flow↔link graph
// reachable from the dirty links. Per-component progressive filling yields
// the same fix sequence — and therefore bit-identical floating-point
// rates — as the full pass in allocate(); see the oracle test.
func (s *Simulator) settle() {
	if len(s.dirty) == 0 {
		return
	}
	s.epoch++
	links := s.compLinks[:0]
	flows := s.compFlows[:0]
	for _, l := range s.dirty {
		s.linkDirty[int(l)] = false
		if s.linkMark[int(l)] != s.epoch {
			s.linkMark[int(l)] = s.epoch
			links = append(links, l)
		}
	}
	s.dirty = s.dirty[:0]
	// BFS over the bipartite sharing graph: link → flows on it → their links.
	for qi := 0; qi < len(links); qi++ {
		for _, f := range s.linkFlows[int(links[qi])] {
			if f.mark == s.epoch {
				continue
			}
			f.mark = s.epoch
			flows = append(flows, f)
			for _, l2 := range f.uniq {
				if s.linkMark[int(l2)] != s.epoch {
					s.linkMark[int(l2)] = s.epoch
					links = append(links, l2)
				}
			}
		}
	}
	// Ascending link order reproduces the oracle's lowest-index tie-break.
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	capped := s.capped[:0]
	unfixed := 0
	for _, f := range flows {
		s.drain(f)
		f.rate = 0
		f.fixed = false
		f.ver++ // stale finish projections no longer count
		if f.RateCap > 0 {
			capped = append(capped, f)
		}
		unfixed++
	}
	for _, l := range links {
		s.remCap[int(l)] = s.net.capacity[int(l)]
		s.nUnfixed[int(l)] = int32(len(s.linkFlows[int(l)]))
	}
	sortCapped(capped)
	s.DebugSettles++
	s.DebugSettleFlows += uint64(len(flows))
	s.waterfill(links, capped, unfixed)
	s.compLinks = links[:0]
	s.compFlows = flows[:0]
	s.capped = capped[:0]
	s.maybeCompactFins()
}

// sortCapped orders capped flows by (RateCap, ID, aseq) — a total order,
// so the (unstable) sort is deterministic. The oracle uses the same
// comparator.
func sortCapped(capped []*Flow) {
	sort.Slice(capped, func(i, j int) bool {
		if capped[i].RateCap != capped[j].RateCap {
			return capped[i].RateCap < capped[j].RateCap
		}
		if capped[i].ID != capped[j].ID {
			return capped[i].ID < capped[j].ID
		}
		return capped[i].aseq < capped[j].aseq
	})
}

// scanThreshold is the component size (links) above which waterfill
// switches from the linear min-scan to the lazy min-heap. Both produce
// the identical fix sequence, so the crossover only trades constants:
// the scan is cache-friendly and allocation-free for the small components
// typical of fidelity-scale runs; the heap wins once components span
// thousands of links (k>=16 fat-trees under full shuffle load).
const scanThreshold = 512

// waterfill runs progressive filling restricted to the given links. remCap
// and nUnfixed must already be initialized for every link in links.
func (s *Simulator) waterfill(links []LinkID, capped []*Flow, unfixed int) {
	if len(links) <= scanThreshold {
		s.waterfillScan(links, capped, unfixed)
		return
	}
	s.waterfillHeap(links, capped, unfixed)
}

// waterfillScan finds each bottleneck with a strictly-less-than scan over
// the component links in ascending order (lowest index wins ties).
func (s *Simulator) waterfillScan(links []LinkID, capped []*Flow, unfixed int) {
	capIdx := 0
	fix := func(f *Flow, rate float64) {
		if f.fixed {
			return
		}
		f.fixed = true
		f.rate = rate
		unfixed--
		for _, l := range f.uniq {
			s.remCap[int(l)] -= rate
			if s.remCap[int(l)] < 0 {
				s.remCap[int(l)] = 0
			}
			s.nUnfixed[int(l)]--
		}
		s.pushFin(f)
	}
	for unfixed > 0 {
		minShare := math.Inf(1)
		minLink := -1
		for _, l := range links {
			if s.nUnfixed[int(l)] == 0 {
				continue
			}
			share := s.remCap[int(l)] / float64(s.nUnfixed[int(l)])
			if share < minShare {
				minShare, minLink = share, int(l)
			}
		}
		for capIdx < len(capped) && capped[capIdx].fixed {
			capIdx++
		}
		if capIdx < len(capped) && capped[capIdx].RateCap < minShare {
			fix(capped[capIdx], capped[capIdx].RateCap)
			continue
		}
		if minLink < 0 {
			// Remaining flows are unconstrained by links: give them caps.
			for _, f := range capped {
				if !f.fixed {
					fix(f, f.RateCap)
				}
			}
			break
		}
		for _, f := range s.linkFlows[minLink] {
			fix(f, minShare)
		}
	}
}

// waterfillHeap finds the next bottleneck with a lazy min-heap keyed by
// (share, linkID) instead of rescanning every component link per
// iteration. Each heap entry snapshots the link's version; fixing a flow
// bumps the version of every link it crosses and pushes a fresh entry, so
// stale snapshots are discarded on pop. The (share, linkID) order
// reproduces exactly the ascending-scan's strictly-less-than selection —
// lowest index among equal shares — and shares are the same
// remCap/nUnfixed quotients the scan would compute, so the fix sequence
// (and therefore every floating-point rate) is bit-identical to both
// waterfillScan and the allocate() oracle.
func (s *Simulator) waterfillHeap(links []LinkID, capped []*Flow, unfixed int) {
	h := s.shares[:0]
	for _, l := range links {
		if s.nUnfixed[int(l)] == 0 {
			continue
		}
		h = append(h, shareEntry{
			share: s.remCap[int(l)] / float64(s.nUnfixed[int(l)]),
			link:  int32(l),
			ver:   s.linkVer[int(l)],
		})
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	capIdx := 0
	fix := func(f *Flow, rate float64) {
		if f.fixed {
			return
		}
		f.fixed = true
		f.rate = rate
		unfixed--
		for _, l := range f.uniq {
			s.remCap[int(l)] -= rate
			if s.remCap[int(l)] < 0 {
				s.remCap[int(l)] = 0
			}
			s.nUnfixed[int(l)]--
			s.linkVer[int(l)]++
			if s.nUnfixed[int(l)] > 0 {
				h.push(shareEntry{
					share: s.remCap[int(l)] / float64(s.nUnfixed[int(l)]),
					link:  int32(l),
					ver:   s.linkVer[int(l)],
				})
			}
		}
		s.pushFin(f)
	}
	for unfixed > 0 {
		minShare := math.Inf(1)
		minLink := -1
		for len(h) > 0 {
			e := h[0]
			if e.ver != s.linkVer[e.link] || s.nUnfixed[e.link] == 0 {
				h.pop()
				continue
			}
			minShare, minLink = e.share, int(e.link)
			break
		}
		for capIdx < len(capped) && capped[capIdx].fixed {
			capIdx++
		}
		if capIdx < len(capped) && capped[capIdx].RateCap < minShare {
			fix(capped[capIdx], capped[capIdx].RateCap)
			continue
		}
		if minLink < 0 {
			// Remaining flows are unconstrained by links: give them caps.
			for _, f := range capped {
				if !f.fixed {
					fix(f, f.RateCap)
				}
			}
			break
		}
		for _, f := range s.linkFlows[minLink] {
			fix(f, minShare)
		}
	}
	s.shares = h[:0]
}

// shareEntry is a snapshot of a link's fair share during waterfill; ver
// invalidates it once the link's remCap or nUnfixed changes.
type shareEntry struct {
	share float64
	link  int32
	ver   uint32
}

// shareHeap is a binary min-heap over (share, link): the same order the
// ascending scan's strictly-less-than minimum search induces.
type shareHeap []shareEntry

func (h shareHeap) less(i, j int) bool {
	if h[i].share != h[j].share {
		return h[i].share < h[j].share
	}
	return h[i].link < h[j].link
}

func (h *shareHeap) push(e shareEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *shareHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
}

func (h shareHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// maybeCompactFins rebuilds the finish heap when stale (version-mismatched)
// entries dominate, bounding memory under heavy re-rating.
func (s *Simulator) maybeCompactFins() {
	if len(s.fins) <= 3*len(s.active)+64 {
		return
	}
	kept := s.fins[:0]
	for _, e := range s.fins {
		if e.f.active && !e.f.Finished && e.ver == e.f.ver {
			kept = append(kept, e)
		}
	}
	s.fins = kept
	for i := len(s.fins)/2 - 1; i >= 0; i-- {
		s.fins.down(i)
	}
}

// allocate recomputes every active flow's rate from scratch with the
// classic O(flows×links) progressive-filling pass. It is retained as the
// brute-force oracle for the incremental settle() path — the two must
// produce bit-identical rates — and is used only by tests and RateOf
// verification; the hot path never calls it.
func (s *Simulator) allocate() {
	act := make([]*Flow, len(s.active))
	copy(act, s.active)
	sort.Slice(act, func(i, j int) bool { return act[i].aseq < act[j].aseq })
	for _, f := range act {
		f.rate = 0
	}
	if len(act) == 0 {
		return
	}
	nLinks := len(s.net.capacity)
	remCap := make([]float64, nLinks)
	copy(remCap, s.net.capacity)
	nUnfixed := make([]int, nLinks)
	flowsOn := make([][]*Flow, nLinks)
	fixed := make(map[*Flow]bool, len(act))

	var capped []*Flow
	unfixedTotal := 0
	for _, f := range act {
		links := f.uniq
		if len(links) == 0 && f.RateCap <= 0 {
			f.rate = math.Inf(1)
			continue
		}
		for _, l := range links {
			flowsOn[int(l)] = append(flowsOn[int(l)], f)
			nUnfixed[int(l)]++
		}
		if f.RateCap > 0 {
			capped = append(capped, f)
		}
		unfixedTotal++
	}
	sortCapped(capped)
	capIdx := 0

	fix := func(f *Flow, rate float64) {
		if fixed[f] {
			return
		}
		fixed[f] = true
		f.rate = rate
		unfixedTotal--
		for _, l := range f.uniq {
			remCap[int(l)] -= rate
			if remCap[int(l)] < 0 {
				remCap[int(l)] = 0
			}
			nUnfixed[int(l)]--
		}
	}

	for unfixedTotal > 0 {
		minShare := math.Inf(1)
		minLink := -1
		for l := 0; l < nLinks; l++ {
			if nUnfixed[l] == 0 {
				continue
			}
			share := remCap[l] / float64(nUnfixed[l])
			if share < minShare {
				minShare, minLink = share, l
			}
		}
		for capIdx < len(capped) && fixed[capped[capIdx]] {
			capIdx++
		}
		if capIdx < len(capped) && capped[capIdx].RateCap < minShare {
			fix(capped[capIdx], capped[capIdx].RateCap)
			continue
		}
		if minLink < 0 {
			for _, f := range capped {
				if !fixed[f] {
					fix(f, f.RateCap)
				}
			}
			break
		}
		for _, f := range flowsOn[minLink] {
			fix(f, minShare)
		}
	}
}

// peekNext returns the earliest pending event (completion or action),
// discarding stale finish projections from the heap top.
func (s *Simulator) peekNext() (float64, bool) {
	for len(s.fins) > 0 {
		e := s.fins[0]
		if !e.f.active || e.f.Finished || e.ver != e.f.ver {
			s.fins.pop()
			continue
		}
		break
	}
	t := math.Inf(1)
	ok := false
	if len(s.fins) > 0 {
		t, ok = s.fins[0].at, true
	}
	if len(s.actions) > 0 && s.actions[0].at < t {
		t, ok = s.actions[0].at, true
	}
	return t, ok
}

// finishDue completes every flow whose projected finish is at or before
// now, then reports them in (time, activation) order.
func (s *Simulator) finishDue() {
	nDone := len(s.done)
	for len(s.fins) > 0 && s.fins[0].at <= s.now {
		e := s.fins.pop()
		f := e.f
		if !f.active || f.Finished || e.ver != f.ver {
			continue
		}
		f.remaining = 0
		f.upd = s.now
		f.Finished = true
		f.active = false
		f.End = s.now
		// Swap-remove from the active set.
		last := len(s.active) - 1
		s.active[f.activeIdx] = s.active[last]
		s.active[f.activeIdx].activeIdx = f.activeIdx
		s.active[last] = nil
		s.active = s.active[:last]
		for _, l := range f.uniq {
			s.removeFromLink(l, f)
			s.markDirty(l)
		}
		s.done = append(s.done, f)
	}
	if s.OnFinish != nil {
		// Callbacks run after the lists are consistent: they may Add flows.
		for _, f := range s.done[nDone:] {
			s.OnFinish(f, s.now)
		}
	}
	s.done = s.done[:nDone]
}

// runActionsDue executes scheduled actions due at the current instant.
func (s *Simulator) runActionsDue() {
	for len(s.actions) > 0 && s.actions[0].at <= s.now+1e-12 {
		a := s.actions.pop()
		a.fn()
	}
}

// step advances to the next event at or before deadline; returns false
// when nothing remains within it.
func (s *Simulator) step(deadline float64) bool {
	s.settle()
	nt, ok := s.peekNext()
	if !ok || nt > deadline {
		return false
	}
	if nt > s.now {
		s.now = nt
	}
	s.finishDue()
	s.runActionsDue()
	s.settle()
	return true
}

// Run executes until all flows finish and no actions remain.
func (s *Simulator) Run() {
	// The spin guard catches any future zero-progress loop (e.g. a float
	// pathology) instead of hanging the caller.
	spins := 0
	last := s.now
	for s.step(math.Inf(1)) {
		if s.now == last {
			spins++
			if spins > 1_000_000 {
				var diag string
				for _, f := range s.active {
					diag += fmt.Sprintf(" flow%d rate=%v rem=%v", f.ID, f.rate, f.remaining)
					if len(diag) > 200 {
						break
					}
				}
				panic(fmt.Sprintf("flowsim: stuck at t=%v actions=%d:%s", s.now, len(s.actions), diag))
			}
		} else {
			spins, last = 0, s.now
		}
	}
}

// RunUntil executes events up to time t, then advances the clock to t.
func (s *Simulator) RunUntil(t float64) {
	for s.step(t) {
	}
	s.settle()
	if s.now < t {
		s.now = t
	}
}

// NextEventTime reports the next pending completion or action, if any.
// Hybrid mode uses it to schedule the engine event that re-enters the
// fluid layer.
func (s *Simulator) NextEventTime() (float64, bool) {
	s.settle()
	return s.peekNext()
}

// ActiveCount reports the number of started, unfinished flows.
func (s *Simulator) ActiveCount() int { return len(s.active) }

// VisitFlowsOn calls fn for each active flow traversing link l, in
// activation order.
func (s *Simulator) VisitFlowsOn(l LinkID, fn func(*Flow)) {
	if int(l) >= len(s.linkFlows) {
		return
	}
	for _, f := range s.linkFlows[int(l)] {
		fn(f)
	}
}

// AllDone reports whether every flow has finished.
func (s *Simulator) AllDone() bool {
	for _, f := range s.flows {
		if !f.Finished {
			return false
		}
	}
	return true
}

// RateOf returns a flow's instantaneous rate after the latest allocation.
func (s *Simulator) RateOf(f *Flow) float64 {
	s.settle()
	return f.rate
}

// String summarizes simulator state.
func (s *Simulator) String() string {
	done := 0
	for _, f := range s.flows {
		if f.Finished {
			done++
		}
	}
	return fmt.Sprintf("flowsim t=%.3fs %d/%d flows done", s.now, done, len(s.flows))
}
