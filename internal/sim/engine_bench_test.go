package sim

import "testing"

// The engine event loop is the substrate under every Fig 9/10 number; these
// benches guard its ns/op and, above all, its allocs/op (expected: zero).

func BenchmarkEngineAfterStep(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(10, fn)
		e.Step()
	}
}

// BenchmarkEngineEventChurn keeps a standing population of future events so
// heap sifts actually move elements, the worst case for the scheduler.
func BenchmarkEngineEventChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i)*Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, fn)
		e.Step()
	}
}

func BenchmarkEngineAfterEventStep(b *testing.B) {
	e := NewEngine(1)
	h := &countingHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterEvent(10, h)
		e.Step()
	}
}

type benchSink struct{}

func (*benchSink) Receive(int, []byte) {}

// BenchmarkLinkForward measures one full link traversal: serialization,
// propagation, pooled delivery event, receive.
func BenchmarkLinkForward(b *testing.B) {
	e := NewEngine(1)
	a := &benchSink{}
	c := &benchSink{}
	l := NewLink(e, a, 1, c, 1, LinkConfig{PropDelay: Microsecond, BandwidthBps: 10e9})
	frame := make([]byte, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.SendFrom(a, frame)
		e.Run()
	}
}
