package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %d", e.Now())
	}
	if e.Processed() != 3 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		e.At(50, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %d", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %d", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunFor(15)
	if ran != 3 || e.Now() != 35 {
		t.Fatalf("ran=%d now=%d", ran, e.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Duration() != time.Second {
		t.Fatal("Second mismatch")
	}
	if (2 * Millisecond).Seconds() != 0.002 {
		t.Fatal("Seconds mismatch")
	}
	if FromDuration(3*time.Microsecond) != 3*Microsecond {
		t.Fatal("FromDuration mismatch")
	}
}

// collector is a test Node recording deliveries.
type collector struct {
	frames [][]byte
	ports  []int
	times  []Time
	eng    *Engine
	states []bool
}

func (c *collector) Receive(port int, frame []byte) {
	c.ports = append(c.ports, port)
	c.frames = append(c.frames, frame)
	if c.eng != nil {
		c.times = append(c.times, c.eng.Now())
	}
}

func (c *collector) PortStateChanged(port int, up bool) {
	c.states = append(c.states, up)
}

func TestLinkDelivery(t *testing.T) {
	e := NewEngine(1)
	a := &collector{eng: e}
	b := &collector{eng: e}
	l := NewLink(e, a, 1, b, 2, LinkConfig{PropDelay: 10 * Microsecond})
	l.SendFrom(a, []byte("hello"))
	e.Run()
	if len(b.frames) != 1 || string(b.frames[0]) != "hello" || b.ports[0] != 2 {
		t.Fatalf("delivery = %v %v", b.frames, b.ports)
	}
	if b.times[0] != 10*Microsecond {
		t.Fatalf("delivered at %d", b.times[0])
	}
	if len(a.frames) != 0 {
		t.Fatal("sender received its own frame")
	}
	st := l.StatsFrom(true)
	if st.Frames != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkBidirectional(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{}
	l := NewLink(e, a, 1, b, 1, LinkConfig{})
	l.SendFrom(b, []byte("to-a"))
	e.Run()
	if len(a.frames) != 1 || string(a.frames[0]) != "to-a" {
		t.Fatalf("a got %v", a.frames)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{eng: e}
	// 8 Mbps: a 1000-byte frame takes 1 ms to serialize.
	l := NewLink(e, a, 1, b, 1, LinkConfig{BandwidthBps: 8e6})
	l.SendFrom(a, make([]byte, 1000))
	l.SendFrom(a, make([]byte, 1000))
	e.Run()
	if len(b.times) != 2 {
		t.Fatalf("deliveries = %d", len(b.times))
	}
	if b.times[0] != Millisecond || b.times[1] != 2*Millisecond {
		t.Fatalf("times = %v", b.times)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{}
	// 8 Mbps, 1 KB frames = 1 ms each; backlog cap 3 ms.
	l := NewLink(e, a, 1, b, 1, LinkConfig{BandwidthBps: 8e6, MaxBacklog: 3 * Millisecond})
	for i := 0; i < 10; i++ {
		l.SendFrom(a, make([]byte, 1000))
	}
	e.Run()
	st := l.StatsFrom(true)
	if st.Drops == 0 {
		t.Fatal("expected drops")
	}
	if int(st.Frames)+int(st.Drops) != 10 {
		t.Fatalf("frames %d + drops %d != 10", st.Frames, st.Drops)
	}
	if len(b.frames) != int(st.Frames) {
		t.Fatalf("delivered %d, sent %d", len(b.frames), st.Frames)
	}
}

func TestLinkFailure(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{}
	l := NewLink(e, a, 1, b, 1, LinkConfig{})
	l.Fail()
	e.Run()
	// Both port monitors must observe the down event.
	if len(a.states) != 1 || a.states[0] != false {
		t.Fatalf("a states = %v", a.states)
	}
	if len(b.states) != 1 || b.states[0] != false {
		t.Fatalf("b states = %v", b.states)
	}
	l.SendFrom(a, []byte("lost"))
	e.Run()
	if len(b.frames) != 0 {
		t.Fatal("frame delivered over a dead link")
	}
	if l.StatsFrom(true).DownTx != 1 {
		t.Fatalf("downtx = %d", l.StatsFrom(true).DownTx)
	}
	l.Restore()
	e.Run()
	if len(a.states) != 2 || a.states[1] != true {
		t.Fatalf("a states after restore = %v", a.states)
	}
	if !l.Up() {
		t.Fatal("link should be up")
	}
}

func TestLinkFailureMidFlight(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{}
	l := NewLink(e, a, 1, b, 1, LinkConfig{PropDelay: 10 * Millisecond})
	l.SendFrom(a, []byte("in-flight"))
	e.After(Millisecond, func() { l.Fail() })
	e.Run()
	if len(b.frames) != 0 {
		t.Fatal("in-flight frame survived link failure")
	}
}

func TestLinkDuplicateSetUpNoNotify(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{}
	l := NewLink(e, a, 1, b, 1, LinkConfig{})
	l.SetUp(true) // already up
	e.Run()
	if len(a.states) != 0 {
		t.Fatal("redundant SetUp should not notify")
	}
}

// Property: N frames sent back-to-back on an idle link are delivered in
// order, each exactly serialization+propagation after the previous start.
func TestLinkOrderingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		e := NewEngine(1)
		a := &collector{}
		b := &collector{eng: e}
		l := NewLink(e, a, 1, b, 1, LinkConfig{BandwidthBps: 1e9, PropDelay: Microsecond, MaxBacklog: Second})
		total := 0
		for _, s := range sizes {
			n := int(s%1400) + 1
			total += n
			l.SendFrom(a, make([]byte, n))
		}
		e.Run()
		if len(b.frames) != len(sizes) {
			return false
		}
		for i := 1; i < len(b.times); i++ {
			if b.times[i] <= b.times[i-1] {
				return false
			}
		}
		return int(l.StatsFrom(true).Bytes) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkImpairmentLoss(t *testing.T) {
	e := NewEngine(7)
	a := &collector{}
	b := &collector{eng: e}
	l := NewLink(e, a, 1, b, 1, LinkConfig{})
	l.Impair(Impairment{LossProb: 0.5})
	const n = 1000
	for i := 0; i < n; i++ {
		l.SendFrom(a, []byte{byte(i)})
	}
	e.Run()
	st := l.StatsFrom(true)
	if st.ImpairLost == 0 || int(st.ImpairLost)+len(b.frames) != n {
		t.Fatalf("lost=%d delivered=%d", st.ImpairLost, len(b.frames))
	}
	if st.ImpairLost < n/4 || st.ImpairLost > 3*n/4 {
		t.Fatalf("loss far from 50%%: %d/%d", st.ImpairLost, n)
	}
	// Clearing the impairment restores lossless delivery.
	l.Impair(Impairment{})
	got := len(b.frames)
	for i := 0; i < 10; i++ {
		l.SendFrom(a, []byte{1})
	}
	e.Run()
	if len(b.frames) != got+10 {
		t.Fatalf("clean link dropped frames: %d -> %d", got, len(b.frames))
	}
}

func TestLinkImpairmentDeterministic(t *testing.T) {
	run := func() (uint64, int) {
		e := NewEngine(42)
		a := &collector{}
		b := &collector{eng: e}
		l := NewLink(e, a, 1, b, 1, LinkConfig{})
		l.Impair(Impairment{LossProb: 0.3, CorruptProb: 0.2, JitterMax: 5 * Microsecond})
		for i := 0; i < 500; i++ {
			l.SendFrom(a, []byte{byte(i), byte(i >> 8), 0})
		}
		e.Run()
		st := l.StatsFrom(true)
		return st.ImpairLost, len(b.frames)
	}
	l1, d1 := run()
	l2, d2 := run()
	if l1 != l2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", l1, d1, l2, d2)
	}
}

func TestLinkImpairmentCorruption(t *testing.T) {
	e := NewEngine(3)
	a := &collector{}
	b := &collector{eng: e}
	l := NewLink(e, a, 1, b, 1, LinkConfig{})
	l.Impair(Impairment{CorruptProb: 1})
	l.SendFrom(a, []byte{0, 0, 0, 0})
	e.Run()
	if len(b.frames) != 1 {
		t.Fatalf("corrupted frame not delivered")
	}
	var ones int
	for _, by := range b.frames[0] {
		for ; by != 0; by &= by - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("expected exactly one flipped bit, got %d", ones)
	}
	if l.StatsFrom(true).ImpairCorrupt != 1 {
		t.Fatalf("stats = %+v", l.StatsFrom(true))
	}
}

func TestLinkImpairmentJitterDelaysDelivery(t *testing.T) {
	e := NewEngine(9)
	a := &collector{}
	b := &collector{eng: e}
	l := NewLink(e, a, 1, b, 1, LinkConfig{PropDelay: 10 * Microsecond})
	l.Impair(Impairment{JitterMax: 50 * Microsecond})
	for i := 0; i < 50; i++ {
		l.SendFrom(a, []byte{byte(i)})
	}
	e.Run()
	var jittered bool
	for _, at := range b.times {
		if at < 10*Microsecond || at > 60*Microsecond {
			t.Fatalf("delivery at %d outside jitter envelope", at)
		}
		if at > 10*Microsecond {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("no frame was jittered")
	}
}

func TestLinkFlapCyclesAndStop(t *testing.T) {
	e := NewEngine(1)
	a := &collector{}
	b := &collector{}
	l := NewLink(e, a, 1, b, 1, LinkConfig{})
	l.StartFlap(10*Millisecond, 5*Millisecond, 5*Millisecond, 3)
	e.RunUntil(100 * Millisecond)
	// 3 cycles: down+up transitions observed by both port monitors... the
	// collector here monitors nothing (no PortMonitor on b? it has one).
	if !l.Up() {
		t.Fatal("link should finish up after the last cycle")
	}
	// 3 downs + 3 ups seen by each endpoint monitor.
	if len(b.states) != 6 {
		t.Fatalf("expected 6 state changes, got %d (%v)", len(b.states), b.states)
	}
	// A second flap can be cancelled before it fires.
	l.StartFlap(10*Millisecond, 5*Millisecond, 5*Millisecond, 100)
	l.StopFlap()
	before := len(b.states)
	e.RunUntil(e.Now() + 200*Millisecond)
	if len(b.states) != before {
		t.Fatalf("cancelled flap still toggled the link: %d -> %d", before, len(b.states))
	}
}
