package sim

import (
	"sync"

	"dumbnet/internal/trace"
)

// Node is anything that can receive frames from a link: a switch or a host
// NIC. Receive runs at frame-delivery virtual time.
type Node interface {
	// Receive is invoked with the local port the frame arrived on and the
	// frame bytes (owned by the receiver).
	Receive(port int, frame []byte)
}

// LinkState notifications are delivered to nodes implementing PortMonitor —
// the hardware port up/down signal dumb switches rely on (§4.2).
type PortMonitor interface {
	PortStateChanged(port int, up bool)
}

// LinkConfig sets the physical characteristics of a link.
type LinkConfig struct {
	// PropDelay is the one-way propagation delay.
	PropDelay Time
	// BandwidthBps is the line rate in bits per second; 0 means infinite
	// (no serialization delay).
	BandwidthBps float64
	// MaxBacklog bounds the transmit queue, expressed as queueing delay;
	// frames that would wait longer are dropped. 0 means a generous
	// default of 50 ms.
	MaxBacklog Time
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.MaxBacklog == 0 {
		c.MaxBacklog = 50 * Millisecond
	}
	return c
}

// LinkStats counts per-direction traffic.
type LinkStats struct {
	Frames uint64
	Bytes  uint64
	Drops  uint64
	DownTx uint64 // sends attempted while the link was down

	ImpairLost    uint64 // frames dropped by probabilistic impairment loss
	ImpairCorrupt uint64 // frames bit-flipped by impairment corruption
	Jittered      uint64 // frames delivered with extra impairment latency
}

// Impairment models a degraded cable: probabilistic frame loss, random
// single-bit corruption, and bounded latency jitter. All randomness is drawn
// from the transmitting end's seeded engine, so impaired runs stay
// reproducible — in a sharded run each direction draws from its own shard's
// stream.
// The zero value is a clean link.
type Impairment struct {
	// LossProb is the per-frame probability of silent loss, in [0, 1].
	LossProb float64
	// CorruptProb is the per-frame probability of flipping one random bit.
	CorruptProb float64
	// JitterMax adds a uniform random [0, JitterMax] delay per delivery.
	JitterMax Time
}

// Active reports whether the impairment does anything.
func (imp Impairment) Active() bool {
	return imp.LossProb > 0 || imp.CorruptProb > 0 || imp.JitterMax > 0
}

// linkEnd is one side of a link. Each end belongs to exactly one engine
// (shard) and carries its own view of the link state: in a sharded run the
// far side of a failing cable learns about the failure one propagation
// delay later, exactly like real optics — and, conveniently, exactly within
// the lookahead contract.
type linkEnd struct {
	eng  *Engine
	node Node
	port int
	up   bool
	// busyUntil is when the transmitter in this direction frees up.
	busyUntil Time
	stats     LinkStats
}

// Link is a full-duplex point-to-point cable between two nodes. Each
// direction has an independent transmitter with serialization delay and a
// bounded queue. A link may span two shards of a ShardGroup; it is then the
// only legal communication channel between them, and its propagation delay
// contributes to the group's lookahead.
type Link struct {
	cfg  LinkConfig
	a, b linkEnd
	imp  Impairment
	// cross is set when the two ends live on different engines.
	cross bool
	// flapGen invalidates previously scheduled flap toggles when bumped.
	flapGen uint64
	// watch, when set, observes transitions of the overall link state
	// (both-ends Up). The hybrid fluid layer uses it to zero/restore the
	// corresponding fluid link capacities on chaos fail/heal events.
	watch func(up bool)
}

// NewLink wires aNode's aPort to bNode's bPort on a single engine. The link
// starts up.
func NewLink(eng *Engine, aNode Node, aPort int, bNode Node, bPort int, cfg LinkConfig) *Link {
	return NewLinkBetween(eng, aNode, aPort, eng, bNode, bPort, cfg)
}

// NewLinkBetween wires aNode's aPort (living on engine engA) to bNode's
// bPort (on engB). With engA == engB this is NewLink. With different
// engines the two must be shards of the same ShardGroup, the propagation
// delay must be positive, and the link registers itself as a cross-shard
// edge, narrowing the group's lookahead window.
func NewLinkBetween(engA *Engine, aNode Node, aPort int, engB *Engine, bNode Node, bPort int, cfg LinkConfig) *Link {
	l := &Link{
		cfg: cfg.withDefaults(),
		a:   linkEnd{eng: engA, node: aNode, port: aPort, up: true},
		b:   linkEnd{eng: engB, node: bNode, port: bPort, up: true},
	}
	if engA != engB {
		if engA.group == nil || engA.group != engB.group {
			panic("sim: NewLinkBetween across engines that are not shards of one group")
		}
		l.cross = true
		engA.group.registerCrossLink(l.cfg.PropDelay)
	}
	return l
}

// Up reports link state: true only when both ends consider the cable live.
func (l *Link) Up() bool { return l.a.up && l.b.up }

// Ends returns the two (node, port) endpoints.
func (l *Link) Ends() (Node, int, Node, int) { return l.a.node, l.a.port, l.b.node, l.b.port }

// endFor returns the link end owned by node from; nil when from is not an
// endpoint.
func (l *Link) endFor(from Node) *linkEnd {
	switch {
	case from == l.a.node:
		return &l.a
	case from == l.b.node:
		return &l.b
	}
	return nil
}

// StatsFrom returns the transmit stats for the direction originating at the
// given node (true for endpoint A).
func (l *Link) StatsFrom(fromA bool) LinkStats {
	if fromA {
		return l.a.stats
	}
	return l.b.stats
}

// Backlog reports the current transmit-queue delay in the direction
// originating at node from — the congestion signal an ECN-marking switch
// reads from its output port.
func (l *Link) Backlog(from Node) Time {
	tx := l.endFor(from)
	if tx == nil {
		return 0
	}
	if b := tx.busyUntil - tx.eng.Now(); b > 0 {
		return b
	}
	return 0
}

// SetUp changes link state and notifies both endpoints that implement
// PortMonitor, modelling the physical-layer signal both sides observe. On a
// single engine both ends flip in the same instant, exactly as before
// sharding existed. On a cross-shard link flipped mid-run, the caller's side
// (end A's shard — flap timers and fault injectors live there) flips now and
// the far side flips one lookahead later, the soonest a remote shard may
// observe anything.
func (l *Link) SetUp(up bool) {
	l.setEndUp(&l.a, up)
	if l.cross {
		if g := l.a.eng.group; g != nil && g.running.Load() {
			b := &l.b
			at := l.a.eng.now + g.lookahead
			l.a.eng.crossSchedule(b.eng, at, func() { l.setEndUp(b, up) }, nil)
			return
		}
	}
	l.setEndUp(&l.b, up)
}

// setEndUp flips one end's view of the link and notifies its monitor on its
// own engine.
func (l *Link) setEndUp(end *linkEnd, up bool) {
	if end.up == up {
		return
	}
	wasUp := l.Up()
	end.up = up
	if mon, ok := end.node.(PortMonitor); ok {
		port := end.port
		end.eng.After(0, func() { mon.PortStateChanged(port, up) })
	}
	if nowUp := l.Up(); nowUp != wasUp && l.watch != nil {
		l.watch(nowUp)
	}
}

// Watch installs an observer for overall link-state transitions (the
// both-ends Up value). The callback runs synchronously inside the state
// flip, at the flipping end's virtual time; at most one watcher is
// supported. Pass nil to clear.
func (l *Link) Watch(fn func(up bool)) { l.watch = fn }

// Fail is shorthand for SetUp(false).
func (l *Link) Fail() { l.SetUp(false) }

// Restore is shorthand for SetUp(true).
func (l *Link) Restore() { l.SetUp(true) }

// Impair installs an impairment model on the link (both directions). Pass
// the zero Impairment to clear it.
func (l *Link) Impair(imp Impairment) { l.imp = imp }

// Impairment returns the current impairment model.
func (l *Link) Impairment() Impairment { return l.imp }

// StartFlap schedules cycles of down/up toggles: after an initial delay the
// link goes down for downFor, comes back for upFor, and repeats, cycles
// times. A later StartFlap or StopFlap cancels any toggles still scheduled.
// Flap timers run on end A's engine.
func (l *Link) StartFlap(after, downFor, upFor Time, cycles int) {
	l.flapGen++
	gen := l.flapGen
	eng := l.a.eng
	var cycle func(remaining int)
	cycle = func(remaining int) {
		if gen != l.flapGen || remaining <= 0 {
			return
		}
		l.SetUp(false)
		eng.After(downFor, func() {
			if gen != l.flapGen {
				return
			}
			l.SetUp(true)
			eng.After(upFor, func() { cycle(remaining - 1) })
		})
	}
	eng.After(after, func() { cycle(cycles) })
}

// StopFlap cancels scheduled flap toggles. The link keeps its current state;
// call Restore to force it up.
func (l *Link) StopFlap() { l.flapGen++ }

// deliverEvent carries one in-flight frame to its receiving endpoint. The
// structs are pooled so per-frame delivery costs no heap allocation — the
// dominant event type in any traffic-carrying simulation. The event runs on
// the receiving end's engine.
type deliverEvent struct {
	rx    *linkEnd
	frame []byte
}

var deliverPool = sync.Pool{New: func() any { return new(deliverEvent) }}

func (d *deliverEvent) RunEvent() {
	rx, frame := d.rx, d.frame
	*d = deliverEvent{}
	deliverPool.Put(d)
	if !rx.up {
		return // link died while the frame was in flight
	}
	rx.node.Receive(rx.port, frame)
}

// sendEvent defers a SendFrom by a pipeline delay (switch forwarding, host
// encap) without allocating a closure per frame.
type sendEvent struct {
	link  *Link
	from  Node
	frame []byte
}

var sendPool = sync.Pool{New: func() any { return new(sendEvent) }}

func (s *sendEvent) RunEvent() {
	link, from, frame := s.link, s.from, s.frame
	*s = sendEvent{}
	sendPool.Put(s)
	link.SendFrom(from, frame)
}

// SendFromAfter schedules SendFrom(from, frame) after d nanoseconds of
// virtual time on the sending end's engine. It is the hot-path form used by
// switch forwarding and host encapsulation: the deferral is a pooled typed
// event, so it performs no per-frame allocation where an equivalent closure
// would.
func (l *Link) SendFromAfter(from Node, frame []byte, d Time) {
	tx := l.endFor(from)
	if tx == nil {
		panic("sim: SendFromAfter by non-endpoint node")
	}
	s := sendPool.Get().(*sendEvent)
	s.link, s.from, s.frame = l, from, frame
	tx.eng.AfterEvent(d, s)
}

// SendFrom transmits a frame from the endpoint owned by node `from` (which
// must be one of the link's endpoints; sends from elsewhere panic — that is
// a wiring bug, not a runtime condition). The frame buffer is owned by the
// link after the call. Timing, randomness, and stats all come from the
// transmitting end's engine; delivery is scheduled on the receiving end's
// engine, crossing the shard boundary through the group's outbox when the
// two differ.
func (l *Link) SendFrom(from Node, frame []byte) {
	var tx, rx *linkEnd
	switch {
	case from == l.a.node:
		tx, rx = &l.a, &l.b
	case from == l.b.node:
		tx, rx = &l.b, &l.a
	default:
		panic("sim: SendFrom by non-endpoint node")
	}
	eng := tx.eng
	if !tx.up {
		tx.stats.DownTx++
		eng.tracer.PacketDrop(int64(eng.Now()), 0, trace.DropLinkDownTx, frame)
		return
	}
	if l.imp.LossProb > 0 && eng.Rand().Float64() < l.imp.LossProb {
		tx.stats.ImpairLost++
		eng.tracer.PacketDrop(int64(eng.Now()), 0, trace.DropImpairLoss, frame)
		return
	}
	if l.imp.CorruptProb > 0 && len(frame) > 0 && eng.Rand().Float64() < l.imp.CorruptProb {
		i := eng.Rand().Intn(len(frame))
		frame[i] ^= 1 << uint(eng.Rand().Intn(8))
		tx.stats.ImpairCorrupt++
		eng.tracer.PacketDrop(int64(eng.Now()), 0, trace.CorruptImpair, frame)
	}
	now := eng.Now()
	start := tx.busyUntil
	if start < now {
		start = now
	}
	if start-now > l.cfg.MaxBacklog {
		tx.stats.Drops++
		eng.tracer.PacketDrop(int64(now), 0, trace.DropQueueOverflow, frame)
		return
	}
	var txTime Time
	if l.cfg.BandwidthBps > 0 {
		bits := float64(len(frame)) * 8
		txTime = Time(bits / l.cfg.BandwidthBps * float64(Second))
	}
	tx.busyUntil = start + txTime
	tx.stats.Frames++
	tx.stats.Bytes += uint64(len(frame))
	deliverAt := tx.busyUntil + l.cfg.PropDelay
	if l.imp.JitterMax > 0 {
		deliverAt += Time(eng.Rand().Int63n(int64(l.imp.JitterMax) + 1))
		tx.stats.Jittered++
	}
	d := deliverPool.Get().(*deliverEvent)
	d.rx, d.frame = rx, frame
	eng.crossSchedule(rx.eng, deliverAt, nil, d)
}
