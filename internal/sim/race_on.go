//go:build race

package sim

// raceEnabled reports whether the binary was built with -race. Shard
// affinity checks are always on under the race detector.
const raceEnabled = true
