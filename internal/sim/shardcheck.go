package sim

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
)

// shardDebug gates the shard-affinity guards on Now/Rand/schedule. They are
// always on in -race builds (where nondeterminism bugs are being hunted
// anyway) and can be forced in normal builds with DUMBNET_SHARD_CHECKS=1.
// When off, the sharded hot path pays a single boolean load; a standalone
// engine pays only the group==nil branch.
var shardDebug = raceEnabled || os.Getenv("DUMBNET_SHARD_CHECKS") == "1"

// curGoid returns the current goroutine's id, parsed from the stack header
// ("goroutine 123 [running]:"). Only used on the debug path — it costs a
// runtime.Stack call.
func curGoid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	i := bytes.IndexByte(s, ' ')
	if i < 0 {
		return -1
	}
	id, err := strconv.ParseInt(string(s[:i]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}

// checkAffinity panics when a shard engine is touched from outside the
// goroutine that owns its current window. Each shard's clock, rng, and heap
// are single-threaded by design; an event handler on shard A reading shard
// B's clock or rng would race and — worse — silently skew B's deterministic
// schedule. While the group is idle (construction, inspection between runs)
// any goroutine may access any shard.
func (e *Engine) checkAffinity(op string) {
	if !shardDebug {
		return
	}
	g := e.group
	if g == nil || !g.running.Load() {
		return
	}
	owner := atomic.LoadInt64(&e.ownerGID)
	gid := curGoid()
	if owner == 0 {
		panic(fmt.Sprintf("sim: Engine.%s on idle shard %d from goroutine %d mid-window; shard engines are goroutine-affine — use the shard that owns the component", op, e.shard, gid))
	}
	if gid != owner {
		panic(fmt.Sprintf("sim: Engine.%s crossed shards: shard %d is owned by goroutine %d this window, called from goroutine %d; route cross-shard effects through links, not direct engine access", op, e.shard, owner, gid))
	}
}
