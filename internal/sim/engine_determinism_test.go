package sim

import (
	"hash/fnv"
	"testing"
)

// spawnHandler is a typed event used by the determinism workload, exercising
// the AfterEvent path alongside closures.
type spawnHandler struct {
	w     *detWorkload
	id    int
	depth int
}

func (h *spawnHandler) RunEvent() { h.w.visit(h.id, h.depth) }

// detWorkload drives a randomized mix of closure and typed events whose
// entire schedule derives from the engine's seeded rng.
type detWorkload struct {
	e      *Engine
	nextID int
	order  []int
	times  []Time
}

func (w *detWorkload) visit(id, depth int) {
	w.order = append(w.order, id)
	w.times = append(w.times, w.e.Now())
	if depth >= 6 {
		return
	}
	n := w.e.Rand().Intn(3) + 1
	for i := 0; i < n; i++ {
		d := Time(w.e.Rand().Intn(900))
		id := w.nextID
		w.nextID++
		if w.e.Rand().Intn(3) == 0 {
			w.e.AfterEvent(d, &spawnHandler{w: w, id: id, depth: depth + 1})
		} else {
			w.e.After(d, func() { w.visit(id, depth+1) })
		}
	}
}

// runSeeded executes the workload and returns the processed-event count plus
// an FNV-1a fingerprint of the exact (id, time) execution sequence.
func runSeeded(seed int64) (uint64, uint64, Time) {
	e := NewEngine(seed)
	w := &detWorkload{e: e}
	for i := 0; i < 8; i++ {
		id := w.nextID
		w.nextID++
		e.At(Time(i*10), func() { w.visit(id, 0) })
	}
	e.Run()
	h := fnv.New64a()
	var b [8]byte
	for i, id := range w.order {
		v := uint64(id)<<32 | uint64(uint32(w.times[i]))
		for j := 0; j < 8; j++ {
			b[j] = byte(v >> (8 * j))
		}
		h.Write(b[:])
	}
	return e.Processed(), h.Sum64(), e.Now()
}

// TestEngineDeterminismGolden pins the exact seeded behavior of the engine:
// two runs with the same seed must agree event-for-event, different seeds
// must diverge, and seed 42 must reproduce the recorded golden fingerprint —
// guarding the pooled-event/bucket scheduler against silent ordering drift.
// If a deliberate scheduler change shifts the golden values, re-record them
// from the failure message.
func TestEngineDeterminismGolden(t *testing.T) {
	p1, h1, end1 := runSeeded(42)
	p2, h2, end2 := runSeeded(42)
	if p1 != p2 || h1 != h2 || end1 != end2 {
		t.Fatalf("same seed diverged: (%d,%#x,%d) vs (%d,%#x,%d)", p1, h1, end1, p2, h2, end2)
	}
	if _, h3, _ := runSeeded(43); h3 == h1 {
		t.Fatalf("different seeds produced identical orderings (%#x)", h1)
	}
	const (
		goldenProcessed = uint64(1256)
		goldenHash      = uint64(0xd20e8b784cded982)
	)
	if p1 != goldenProcessed || h1 != goldenHash {
		t.Fatalf("seed 42 fingerprint drifted: processed=%d hash=%#x, want processed=%d hash=%#x",
			p1, h1, goldenProcessed, goldenHash)
	}
}

// TestEngineAfterStepAllocFree locks in the headline property of the
// concrete-typed heap + bucket scheduler: a steady-state schedule/execute
// cycle performs zero heap allocations.
func TestEngineAfterStepAllocFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm up: grow the heap and bucket backing arrays past steady state.
	for i := 0; i < 256; i++ {
		e.After(Time(i%7), fn)
	}
	e.Run()
	if allocs := testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.Step()
	}); allocs != 0 {
		t.Fatalf("After+Step allocated %.1f times per op, want 0", allocs)
	}
	// The typed-event path must also be allocation-free given a pooled (here:
	// reused) handler.
	h := &countingHandler{}
	if allocs := testing.AllocsPerRun(1000, func() {
		e.AfterEvent(10, h)
		e.Step()
	}); allocs != 0 {
		t.Fatalf("AfterEvent+Step allocated %.1f times per op, want 0", allocs)
	}
	if h.n != 1000+1 {
		t.Fatalf("handler ran %d times", h.n)
	}
}

type countingHandler struct{ n int }

func (h *countingHandler) RunEvent() { h.n++ }

// TestEngineBucketOrdering stresses the same-deadline bucket fast path
// against the heap: interleaved duplicate and distinct deadlines must still
// execute in exact (time, FIFO) order.
func TestEngineBucketOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	record := func(id int) func() { return func() { got = append(got, id) } }
	// Arm the bucket at t=50, divert to the heap, return to the bucket time,
	// then schedule earlier and later events around it.
	e.At(50, record(0))  // arms bucket@50
	e.At(20, record(1))  // heap
	e.At(50, record(2))  // bucket append
	e.At(10, record(3))  // heap
	e.At(50, record(4))  // bucket append
	e.At(70, record(5))  // heap
	e.At(20, record(6))  // heap, FIFO after id 1
	e.Run()
	want := []int{3, 1, 6, 0, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 70 || e.Processed() != 7 {
		t.Fatalf("now=%d processed=%d", e.Now(), e.Processed())
	}
}

// TestEngineBucketRearmAcrossSteps covers bucket re-arming while earlier
// heap events still exist, including events scheduled from inside handlers.
func TestEngineBucketRearmAcrossSteps(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.At(30, func() {
		got = append(got, e.Now())
		e.After(0, func() { got = append(got, e.Now()) }) // same-time re-arm
		e.After(5, func() { got = append(got, e.Now()) })
	})
	e.At(10, func() { got = append(got, e.Now()) })
	e.Run()
	want := []Time{10, 30, 30, 35}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("times %v, want %v", got, want)
		}
	}
}
