// Package sim is a deterministic discrete-event simulator: a virtual clock,
// an event heap, and link primitives with propagation delay, serialization
// at finite bandwidth, bounded queues and failure injection. The DumbNet
// switch and host models execute on top of it, replacing the paper's
// physical testbed and Mininet-style emulator with a reproducible
// laptop-scale substrate.
package sim

import (
	"math/rand"
	"time"

	"dumbnet/internal/trace"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromDuration converts a wall-clock duration into virtual time.
func FromDuration(d time.Duration) Time { return Time(d) }

// Handler is the typed, allocation-free alternative to a closure callback:
// implementations are usually pooled structs whose fields carry the event's
// arguments. RunEvent fires at the scheduled virtual time; a pooled handler
// should copy its fields to locals (or finish using them) and return itself
// to its pool before or after running, never while still scheduled.
type Handler interface {
	RunEvent()
}

// event is one scheduled callback: either a closure (fn) or a typed Handler
// (h). Exactly one of the two is set.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for same-time events
	fn  func()
	h   Handler
}

// before orders events by (time, schedule order).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

func (e *event) run() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.h.RunEvent()
}

// eventHeap is a concrete-typed binary min-heap of events. It deliberately
// does not use container/heap: boxing events through `any` in Push/Pop
// allocates on every operation, which dominated the event loop's cost.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release callback references for the GC
	*h = s[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		least := l
		if r < n && h[r].before(&h[l]) {
			least = r
		}
		if !h[least].before(&h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Engine is the simulation core. It is single-threaded: all event handlers
// run sequentially in virtual-time order, so models need no locking.
//
// Scheduling uses two structures. The heap handles the general case in
// O(log n). The bucket is a timer-wheel-style fast path for the dominant
// workload pattern — bursts of events sharing one deadline (a switch
// forwarding a batch of frames all at now+ForwardDelay, a link delivering
// back-to-back at the same serialization boundary): events whose deadline
// matches the armed bucket append in O(1) and drain FIFO. Both structures
// reuse their backing arrays, so a steady-state schedule/execute cycle
// performs no heap allocations.
type Engine struct {
	now       Time
	events    eventHeap
	bucket    []event // events sharing the bucketAt deadline, FIFO
	bucketAt  Time
	bucketPos int // next unconsumed bucket entry
	seq       uint64
	rng       *rand.Rand
	processed uint64
	tracer    *trace.Recorder
	metrics   *trace.Registry

	// Sharding state. A standalone engine (NewEngine) has group == nil and
	// behaves exactly as before; an engine created by NewShardedEngine is
	// one shard of a ShardGroup and advances only inside the group's
	// conservative time windows.
	group *ShardGroup
	shard int
	// ownerGID is the goroutine ID of the worker currently executing this
	// shard's window; maintained only when shard-affinity checks are on.
	ownerGID int64
	// crossMin is the earliest cross-shard arrival produced during the
	// current window (dynamic solo-window bound); reset each window.
	crossMin Time
}

// NewEngine creates an engine whose randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), metrics: trace.NewRegistry()}
}

// Now returns the current virtual time. In a sharded run Now is shard-affine:
// calling it from another shard's event handler is a determinism bug, and
// panics when shard checks are enabled (-race builds or
// DUMBNET_SHARD_CHECKS=1).
func (e *Engine) Now() Time {
	if e.group != nil {
		e.checkAffinity("Now")
	}
	return e.now
}

// Rand returns the engine's deterministic random source. Like Now, Rand is
// shard-affine: each shard owns an independent seeded stream, and drawing
// from another shard's stream would silently skew both schedules. Misuse
// panics when shard checks are enabled.
func (e *Engine) Rand() *rand.Rand {
	if e.group != nil {
		e.checkAffinity("Rand")
	}
	return e.rng
}

// Shard returns this engine's shard index within its group (0 for a
// standalone engine).
func (e *Engine) Shard() int { return e.shard }

// Group returns the owning shard group, nil for a standalone engine.
func (e *Engine) Group() *ShardGroup { return e.group }

// SetTracer attaches a flight recorder. Every component holds the engine,
// so this single hook wires tracing through the whole model; nil (the
// default) disables recording, and trace.Recorder methods are nil-safe so
// call sites need no guards.
func (e *Engine) SetTracer(t *trace.Recorder) { e.tracer = t }

// Tracer returns the attached flight recorder (nil when tracing is off).
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// Metrics returns the engine's unified metrics registry. It always exists:
// instruments are cheap, and components register their counters
// unconditionally.
func (e *Engine) Metrics() *trace.Registry { return e.metrics }

// Processed reports how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled.
func (e *Engine) Pending() int {
	return len(e.events) + (len(e.bucket) - e.bucketPos)
}

// schedule enqueues one event (fn or h) at absolute time t, enforcing shard
// affinity in sharded runs.
func (e *Engine) schedule(t Time, fn func(), h Handler) {
	if e.group != nil {
		e.checkAffinity("schedule")
	}
	e.enqueue(t, fn, h)
}

// enqueue is schedule without the affinity guard — the barrier merge calls
// it from the driver goroutine while shard ownership is parked.
func (e *Engine) enqueue(t Time, fn func(), h Handler) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := event{at: t, seq: e.seq, fn: fn, h: h}
	if e.bucketPos == len(e.bucket) {
		// Bucket drained: re-arm it on this deadline.
		e.bucket = append(e.bucket[:0], ev)
		e.bucketPos = 0
		e.bucketAt = t
		return
	}
	if t == e.bucketAt {
		e.bucket = append(e.bucket, ev)
		return
	}
	e.events.push(ev)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn, nil) }

// After schedules fn d nanoseconds of virtual time from now.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, fn, nil) }

// AtEvent schedules a typed handler at absolute virtual time t (clamped to
// now). Unlike At, it allocates nothing: the handler is typically a pooled
// struct carrying its own arguments.
func (e *Engine) AtEvent(t Time, h Handler) { e.schedule(t, nil, h) }

// AfterEvent schedules a typed handler d nanoseconds of virtual time from
// now.
func (e *Engine) AfterEvent(d Time, h Handler) { e.schedule(e.now+d, nil, h) }

// nextEventTime returns the earliest scheduled deadline; ok is false when no
// events remain.
func (e *Engine) nextEventTime() (at Time, ok bool) {
	inBucket := e.bucketPos < len(e.bucket)
	switch {
	case inBucket && len(e.events) > 0:
		if e.bucketAt <= e.events[0].at {
			return e.bucketAt, true
		}
		return e.events[0].at, true
	case inBucket:
		return e.bucketAt, true
	case len(e.events) > 0:
		return e.events[0].at, true
	}
	return 0, false
}

// Step executes the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	var ev event
	inBucket := e.bucketPos < len(e.bucket)
	switch {
	case !inBucket && len(e.events) == 0:
		return false
	case inBucket && (len(e.events) == 0 || e.bucket[e.bucketPos].before(&e.events[0])):
		ev = e.bucket[e.bucketPos]
		e.bucket[e.bucketPos] = event{} // release callback references
		e.bucketPos++
		if e.bucketPos == len(e.bucket) {
			e.bucket = e.bucket[:0]
			e.bucketPos = 0
		}
	default:
		ev = e.events.pop()
	}
	e.now = ev.at
	e.processed++
	ev.run()
	return true
}

// Run executes events until the queue drains. For a sharded engine, Run
// drives the whole group: every shard advances through conservative windows
// until no shard holds an event.
func (e *Engine) Run() {
	if e.group != nil {
		e.group.Run()
		return
	}
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled later stay queued. For a sharded engine it
// advances the whole group to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	if e.group != nil {
		e.group.RunUntil(deadline)
		return
	}
	for {
		at, ok := e.nextEventTime()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d nanoseconds of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// runWindow executes this shard's events with time strictly before end.
// The clock is left at the last executed event; the group advances it to
// the window boundary only when a deadline requires it.
func (e *Engine) runWindow(end Time) {
	for {
		at, ok := e.nextEventTime()
		if !ok || at >= end {
			return
		}
		e.Step()
	}
}

// runWindowSolo is runWindow for a window in which every other shard is
// idle: the bound tightens dynamically to crossMin+la — the earliest time
// another shard could react to something this shard sent — letting a lone
// active shard (bootstrap, discovery, a busy pod) run far past the static
// lookahead without waking the workers.
func (e *Engine) runWindowSolo(end, la Time) {
	for {
		limit := end
		if e.crossMin < maxTime && e.crossMin+la < limit {
			limit = e.crossMin + la
		}
		at, ok := e.nextEventTime()
		if !ok || at >= limit {
			return
		}
		e.Step()
	}
}
