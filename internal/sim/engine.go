// Package sim is a deterministic discrete-event simulator: a virtual clock,
// an event heap, and link primitives with propagation delay, serialization
// at finite bandwidth, bounded queues and failure injection. The DumbNet
// switch and host models execute on top of it, replacing the paper's
// physical testbed and Mininet-style emulator with a reproducible
// laptop-scale substrate.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromDuration converts a wall-clock duration into virtual time.
func FromDuration(d time.Duration) Time { return Time(d) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event         { return h[0] }
func (h *eventHeap) pop() event         { return heap.Pop(h).(event) }
func (h *eventHeap) push(e event)       { heap.Push(h, e) }
func (h eventHeap) emptyHeap() bool     { return len(h) == 0 }
func (h eventHeap) nextEventTime() Time { return h[0].at }

// Engine is the simulation core. It is single-threaded: all event handlers
// run sequentially in virtual-time order, so models need no locking.
type Engine struct {
	now       Time
	events    eventHeap
	seq       uint64
	rng       *rand.Rand
	processed uint64
}

// NewEngine creates an engine whose randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds of virtual time from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	if e.events.emptyHeap() {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// the deadline. Events scheduled later stay queued.
func (e *Engine) RunUntil(deadline Time) {
	for !e.events.emptyHeap() && e.events.nextEventTime() <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d nanoseconds of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
