package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dumbnet/internal/trace"
)

// maxTime is the largest representable virtual time, used as an "infinitely
// far" sentinel for lookahead and next-event computations.
const maxTime = Time(1<<63 - 1)

// Conservative parallel discrete-event simulation.
//
// A ShardGroup partitions the model across n Engines (shards), each with its
// own event heap, rng stream, tracer, and metrics registry. Shards advance
// concurrently inside bounded time windows [T, T+la) where T is the global
// minimum next-event time and la — the lookahead — is the minimum latency of
// any cross-shard link. A frame sent across shards at time t arrives no
// earlier than t+la >= T+la, i.e. strictly after the window, so every shard
// can execute its events with time < T+la without ever missing an input from
// a concurrent shard. Cross-shard deliveries produced during a window are
// buffered in per-(src,dst) outboxes and merged at the window barrier in
// deterministic (time, source shard, production order) order, which fixes
// each destination engine's sequence-number assignment and therefore the
// whole schedule: a sharded run is reproducible for a given (seed, nShards)
// regardless of how the OS schedules the workers.
//
// When only one shard holds runnable events (bootstrap, a single busy pod)
// the group uses a solo fast path: the shard runs alone, inline on the
// driver goroutine, bounded not by T+la but by the earliest time any other
// shard could possibly act — the minimum of (its first pending event, the
// earliest cross-shard arrival the solo shard has produced this window) plus
// lookahead. This lets lopsided phases run at essentially single-engine
// speed instead of crawling forward one lookahead per barrier.

// crossEvent is one buffered cross-shard event awaiting merge at a barrier.
// Exactly one of fn/h is set, mirroring event.
type crossEvent struct {
	at Time
	fn func()
	h  Handler
}

// Option configures NewShardedEngine.
type Option func(*groupConfig)

type groupConfig struct {
	shards int
}

// Shards sets the number of shards (engines) in the group. n must be >= 1.
func Shards(n int) Option {
	return func(c *groupConfig) { c.shards = n }
}

// ShardGroup owns n shard Engines and advances them in lockstep windows.
// Construction, wiring, and result inspection happen on one goroutine while
// the group is idle; Run/RunUntil/RunFor drive the parallel phase.
type ShardGroup struct {
	shards    []*Engine
	lookahead Time // min cross-shard link latency; maxTime when none registered

	running atomic.Bool

	// outbox[src][dst] buffers cross events produced by shard src for shard
	// dst during the current window. Each (src,dst) cell is written only by
	// src's worker, so no locking is needed; the driver drains all cells at
	// the barrier.
	outbox [][][]crossEvent

	// scratch is the reusable merge buffer.
	scratch []mergeItem

	// next[i] caches shard i's next-event time during window planning.
	next []Time

	work   []chan Time // per-worker window deadlines, shards 1..n-1
	wg     sync.WaitGroup
	closed bool

	// Window accounting: how many barrier windows (>= 2 active shards) and
	// solo fast-path windows the group has executed. The ratio of virtual
	// time advanced to barrier windows is the direct measure of how much a
	// given lookahead (e.g. a WAN interconnect's propagation delay) buys —
	// the federated sharding bench reports it.
	windowsParallel uint64
	windowsSolo     uint64
}

type mergeItem struct {
	ev  crossEvent
	src int
	idx int
}

// NewShardedEngine creates a shard group whose shard 0 is seeded with seed
// exactly (so a single-shard group replays the same rng stream as
// NewEngine(seed)); the remaining shards get distinct deterministic seeds
// derived from it. Each shard has its own metrics registry; tracers are
// attached per shard with Engine.SetTracer.
func NewShardedEngine(seed int64, opts ...Option) *ShardGroup {
	cfg := groupConfig{shards: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 1 {
		panic(fmt.Sprintf("sim: NewShardedEngine with %d shards", cfg.shards))
	}
	g := &ShardGroup{
		lookahead: maxTime,
		shards:    make([]*Engine, cfg.shards),
		outbox:    make([][][]crossEvent, cfg.shards),
		next:      make([]Time, cfg.shards),
		work:      make([]chan Time, cfg.shards),
	}
	for i := range g.shards {
		e := NewEngine(shardSeed(seed, i))
		e.group = g
		e.shard = i
		g.shards[i] = e
		g.outbox[i] = make([][]crossEvent, cfg.shards)
	}
	for i := 1; i < cfg.shards; i++ {
		g.work[i] = make(chan Time)
		go g.worker(i)
	}
	return g
}

// shardSeed derives shard i's rng seed. Shard 0 keeps the user seed
// verbatim; the rest are mixed through a splitmix64 step so neighbouring
// seeds do not produce correlated streams.
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NumShards returns the number of shards in the group.
func (g *ShardGroup) NumShards() int { return len(g.shards) }

// Shard returns shard i's engine. Components placed on shard i must be
// built against — and only ever touch — this engine.
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i] }

// Lookahead returns the window width: the minimum registered cross-shard
// link latency, or maxTime when no cross-shard link exists.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Windows reports how many execution windows the group has run since
// construction: parallel barrier windows (two or more shards dispatched)
// and solo fast-path windows. Fewer barrier windows per unit of virtual
// time means wider windows — the payoff of a larger lookahead.
func (g *ShardGroup) Windows() (parallel, solo uint64) {
	return g.windowsParallel, g.windowsSolo
}

// registerCrossLink narrows the lookahead to the new cross-shard link's
// latency. Called by NewLinkBetween for every link whose endpoints live on
// different shards; a zero or negative latency would collapse the window to
// nothing, so it is rejected as a wiring bug.
func (g *ShardGroup) registerCrossLink(d Time) {
	if d <= 0 {
		panic("sim: cross-shard link needs positive propagation delay (lookahead would be zero)")
	}
	if g.running.Load() {
		panic("sim: cross-shard link added while the group is running")
	}
	if d < g.lookahead {
		g.lookahead = d
	}
}

// Metrics returns every shard's metrics registry, index-aligned with the
// shards. Aggregate with trace.Registry snapshots after a run.
func (g *ShardGroup) Metrics() []*trace.Registry {
	out := make([]*trace.Registry, len(g.shards))
	for i, e := range g.shards {
		out[i] = e.metrics
	}
	return out
}

// Processed sums the event counts of all shards.
func (g *ShardGroup) Processed() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.processed
	}
	return n
}

// Pending sums the scheduled-event counts of all shards.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.shards {
		n += e.Pending()
	}
	return n
}

// Now returns the group clock: the maximum shard clock. After RunUntil all
// shards agree on the deadline; mid-construction or after a drain the shards
// may differ and the furthest-ahead one defines group time.
func (g *ShardGroup) Now() Time {
	var t Time
	for _, e := range g.shards {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Run executes windows until every shard's queue drains.
func (g *ShardGroup) Run() { g.run(maxTime-1, false) }

// RunUntil executes events with time <= deadline on every shard, then
// advances all shard clocks to the deadline so the group is in a consistent
// instant.
func (g *ShardGroup) RunUntil(deadline Time) { g.run(deadline, true) }

// RunFor advances the whole group d nanoseconds of virtual time past the
// group clock.
func (g *ShardGroup) RunFor(d Time) { g.RunUntil(g.Now() + d) }

// Close shuts down the worker goroutines. The group must be idle. Shard
// engines stay readable (stats, metrics) but the group can no longer run.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for i := 1; i < len(g.shards); i++ {
		close(g.work[i])
	}
}

// worker is the persistent goroutine for shard i >= 1: it executes one
// window per deadline received, then signals the barrier.
func (g *ShardGroup) worker(i int) {
	e := g.shards[i]
	for end := range g.work[i] {
		if shardDebug {
			atomic.StoreInt64(&e.ownerGID, curGoid())
		}
		e.runWindow(end)
		g.wg.Done()
	}
}

// run is the window loop shared by Run and RunUntil. Events with time <=
// deadline execute; when clamp is set, all shard clocks are advanced to the
// deadline afterwards.
func (g *ShardGroup) run(deadline Time, clamp bool) {
	if g.closed {
		panic("sim: ShardGroup used after Close")
	}
	if g.running.Swap(true) {
		panic("sim: ShardGroup.Run reentered (running from inside an event handler?)")
	}
	defer g.running.Store(false)

	la := g.lookahead
	for {
		// Plan the window: global minimum next-event time and the set of
		// shards holding runnable (<= deadline) events.
		T := maxTime
		active, activeCount := -1, 0
		otherMin := maxTime // earliest pending event outside the active shard
		for i, e := range g.shards {
			at, ok := e.nextEventTime()
			if !ok {
				g.next[i] = maxTime
				continue
			}
			g.next[i] = at
			if at < T {
				T = at
			}
			if at <= deadline {
				if activeCount == 0 {
					active = i
				}
				activeCount++
			}
		}
		if activeCount == 0 || T > deadline {
			break
		}

		if activeCount == 1 {
			// Solo fast path: one busy shard runs inline, bounded by the
			// earliest instant any idle shard could act (its first pending
			// event — possibly past the deadline — or a reaction to a cross
			// delivery produced in this very window, each plus lookahead).
			for i := range g.shards {
				if i != active && g.next[i] < otherMin {
					otherMin = g.next[i]
				}
			}
			bound := boundedAdd(otherMin, la)
			if d := deadline + 1; d < bound {
				bound = d
			}
			e := g.shards[active]
			e.crossMin = maxTime
			if shardDebug {
				g.markOwners(active)
			}
			e.runWindowSolo(bound, la)
			g.windowsSolo++
			g.merge()
			continue
		}

		end := boundedAdd(T, la)
		if d := deadline + 1; d < end {
			end = d
		}
		if shardDebug {
			g.markOwners(-1)
		}
		// Dispatch every shard with an event inside the window to its
		// worker; shard 0 runs inline on the driver goroutine.
		runZero := g.next[0] < end
		for i := 1; i < len(g.shards); i++ {
			if g.next[i] < end {
				g.wg.Add(1)
				g.work[i] <- end
			}
		}
		if runZero {
			if shardDebug {
				atomic.StoreInt64(&g.shards[0].ownerGID, curGoid())
			}
			g.shards[0].runWindow(end)
		}
		g.wg.Wait()
		g.windowsParallel++
		g.merge()
	}

	if clamp {
		for _, e := range g.shards {
			if e.now < deadline {
				e.now = deadline
			}
		}
	}
}

// markOwners resets per-shard ownership for a new window: the solo shard (or
// nobody, -1) is marked driver-owned; every other shard is ownerless, so a
// stray access from a concurrent handler panics instead of racing.
func (g *ShardGroup) markOwners(solo int) {
	gid := curGoid()
	for i, e := range g.shards {
		if i == solo {
			atomic.StoreInt64(&e.ownerGID, gid)
		} else {
			atomic.StoreInt64(&e.ownerGID, 0)
		}
	}
}

// boundedAdd returns a+b saturating at maxTime.
func boundedAdd(a, b Time) Time {
	if a >= maxTime-b {
		return maxTime
	}
	return a + b
}

// merge drains all outboxes at a window barrier, scheduling buffered cross
// events into their destination shards in (time, source shard, production
// order) order. The ordering fixes destination sequence numbers and is
// independent of worker interleaving, which is what makes sharded runs
// deterministic.
func (g *ShardGroup) merge() {
	for dst := range g.shards {
		g.scratch = g.scratch[:0]
		for src := range g.shards {
			box := g.outbox[src][dst]
			for i := range box {
				g.scratch = append(g.scratch, mergeItem{ev: box[i], src: src, idx: i})
			}
			g.outbox[src][dst] = box[:0]
		}
		if len(g.scratch) == 0 {
			continue
		}
		sort.Slice(g.scratch, func(a, b int) bool {
			x, y := &g.scratch[a], &g.scratch[b]
			if x.ev.at != y.ev.at {
				return x.ev.at < y.ev.at
			}
			if x.src != y.src {
				return x.src < y.src
			}
			return x.idx < y.idx
		})
		d := g.shards[dst]
		for i := range g.scratch {
			it := &g.scratch[i]
			d.enqueue(it.ev.at, it.ev.fn, it.ev.h)
			it.ev = crossEvent{} // release references
		}
	}
}

// crossSchedule schedules an event (fn or h) at absolute time at on engine
// dst, where the caller executes on engine e. Same-engine or idle-group
// calls schedule directly — in a standalone engine this is exactly
// Engine.schedule. Mid-window cross-shard calls buffer into the outbox for
// deterministic merge at the barrier; the lookahead contract (at >= now+la)
// is asserted when shard checks are on.
func (e *Engine) crossSchedule(dst *Engine, at Time, fn func(), h Handler) {
	if dst == e || e.group == nil || !e.group.running.Load() {
		dst.schedule(at, fn, h)
		return
	}
	g := e.group
	if g != dst.group {
		panic("sim: cross-shard schedule between unrelated groups")
	}
	if shardDebug && at < e.now+g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard event at t=%d violates lookahead (now=%d la=%d)", at, e.now, g.lookahead))
	}
	if at < e.crossMin {
		e.crossMin = at
	}
	g.outbox[e.shard][dst.shard] = append(g.outbox[e.shard][dst.shard], crossEvent{at: at, fn: fn, h: h})
}
