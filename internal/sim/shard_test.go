package sim

import (
	"fmt"
	"testing"
)

// pingNode is a minimal Node that echoes every frame back on the link it
// arrived on, after a small processing delay, and hashes what it sees. Used
// to generate genuine cross-shard traffic.
type pingNode struct {
	eng   *Engine
	link  *Link
	seen  uint64
	hash  uint64
	limit int
}

func (p *pingNode) Receive(port int, frame []byte) {
	p.seen++
	for _, b := range frame {
		p.hash = p.hash*1099511628211 + uint64(b)
	}
	p.hash = p.hash*31 + uint64(p.eng.Now())
	if int(p.seen) >= p.limit {
		return
	}
	// Echo with a jittered local delay drawn from this shard's rng.
	d := Time(p.eng.Rand().Int63n(int64(10 * Microsecond)))
	frame = append(frame[:0:0], frame...)
	p.link.SendFromAfter(p, frame, d)
}

// buildPingPair wires two pingNodes across shards 0 and 1 of a group (or on
// one engine when g has a single shard) and starts an exchange.
func buildPingPair(g *ShardGroup, limit int) (*pingNode, *pingNode) {
	ea := g.Shard(0)
	eb := g.Shard(g.NumShards() - 1)
	a := &pingNode{eng: ea, limit: limit}
	b := &pingNode{eng: eb, limit: limit}
	l := NewLinkBetween(ea, a, 0, eb, b, 0, LinkConfig{PropDelay: 50 * Microsecond, BandwidthBps: 1e9})
	a.link, b.link = l, l
	ea.At(0, func() { l.SendFrom(a, []byte{1, 2, 3, 4}) })
	return a, b
}

func TestShardedPingDeterministic(t *testing.T) {
	run := func(shards int) (uint64, uint64, uint64) {
		g := NewShardedEngine(7, Shards(shards))
		defer g.Close()
		a, b := buildPingPair(g, 200)
		g.Run()
		return a.hash, b.hash, g.Processed()
	}
	h1a, h1b, p1 := run(2)
	h2a, h2b, p2 := run(2)
	if h1a != h2a || h1b != h2b || p1 != p2 {
		t.Fatalf("sharded run not reproducible: (%x,%x,%d) vs (%x,%x,%d)", h1a, h1b, p1, h2a, h2b, p2)
	}
	if p1 == 0 {
		t.Fatal("no events processed")
	}
}

// TestShardGroupSingleShardMatchesEngine verifies that a one-shard group
// replays exactly the same schedule as a standalone engine with the same
// seed: same rng stream, same event count, same hash.
func TestShardGroupSingleShardMatchesEngine(t *testing.T) {
	runOn := func(e *Engine, runAll func()) (uint64, uint64) {
		var hash uint64
		var count uint64
		var tick func()
		tick = func() {
			count++
			hash = hash*1099511628211 + uint64(e.Rand().Int63())
			hash = hash*31 + uint64(e.Now())
			if count < 500 {
				e.After(Time(e.Rand().Int63n(int64(Millisecond))), tick)
			}
		}
		e.At(0, tick)
		runAll()
		return hash, count
	}
	plain := NewEngine(99)
	h1, c1 := runOn(plain, plain.Run)
	g := NewShardedEngine(99, Shards(1))
	defer g.Close()
	h2, c2 := runOn(g.Shard(0), g.Run)
	if h1 != h2 || c1 != c2 {
		t.Fatalf("single-shard group diverges from standalone engine: (%x,%d) vs (%x,%d)", h1, c1, h2, c2)
	}
}

// TestShardedCrossOrdering checks the deterministic merge: many cross-shard
// events landing at identical times from different source shards must be
// executed in (time, source shard, production order) order at the receiver.
func TestShardedCrossOrdering(t *testing.T) {
	const senders = 3
	g := NewShardedEngine(1, Shards(senders+1))
	defer g.Close()
	rxEng := g.Shard(0)

	var order []string
	rx := &funcNode{fn: func(port int, frame []byte) {
		order = append(order, fmt.Sprintf("%d@%d", frame[0], rxEng.Now()))
	}}
	// Each sender shard fires two frames at the same instant over identical
	// links, so all arrivals collide at one virtual time.
	for s := 1; s <= senders; s++ {
		eng := g.Shard(s)
		tag := byte(s)
		txNode := &funcNode{}
		l := NewLinkBetween(eng, txNode, 0, rxEng, rx, s, LinkConfig{PropDelay: Millisecond})
		eng.At(0, func() {
			l.SendFrom(txNode, []byte{tag, 1})
			l.SendFrom(txNode, []byte{tag, 2})
		})
	}
	g.Run()
	want := []string{"1@1000000", "1@1000000", "2@1000000", "2@1000000", "3@1000000", "3@1000000"}
	if len(order) != len(want) {
		t.Fatalf("got %d arrivals, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("arrival %d = %s, want %s (full: %v)", i, order[i], want[i], order)
		}
	}
}

// funcNode is a comparable Node wrapping a callback (SendFrom identifies
// endpoints by ==, so a bare func type won't do).
type funcNode struct {
	fn func(port int, frame []byte)
}

func (f *funcNode) Receive(port int, frame []byte) {
	if f.fn != nil {
		f.fn(port, frame)
	}
}

// TestShardedRunUntilClampsClocks verifies that after RunUntil all shards sit
// at the deadline even if some never executed an event.
func TestShardedRunUntilClampsClocks(t *testing.T) {
	g := NewShardedEngine(3, Shards(4))
	defer g.Close()
	g.Shard(1).At(2*Millisecond, func() {})
	g.RunUntil(10 * Millisecond)
	for i := 0; i < g.NumShards(); i++ {
		if now := g.Shard(i).Now(); now != 10*Millisecond {
			t.Fatalf("shard %d clock = %v, want 10ms", i, now)
		}
	}
	if g.Now() != 10*Millisecond {
		t.Fatalf("group clock = %v", g.Now())
	}
}

// TestCrossLinkLookaheadValidation: a cross-shard link with zero propagation
// delay must be rejected — it would collapse the conservative window.
func TestCrossLinkLookaheadValidation(t *testing.T) {
	g := NewShardedEngine(1, Shards(2))
	defer g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delay cross-shard link accepted")
		}
	}()
	NewLinkBetween(g.Shard(0), &funcNode{}, 0, g.Shard(1), &funcNode{}, 0, LinkConfig{})
}

// TestCrossLinkUnrelatedEngines: linking two standalone engines is a wiring
// bug and must panic.
func TestCrossLinkUnrelatedEngines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("link across unrelated engines accepted")
		}
	}()
	NewLinkBetween(NewEngine(1), &funcNode{}, 0, NewEngine(2), &funcNode{}, 0, LinkConfig{PropDelay: Millisecond})
}

// TestShardAffinityGuard: with checks enabled, touching another shard's
// engine from inside a window must panic rather than race.
func TestShardAffinityGuard(t *testing.T) {
	if !shardDebug {
		old := shardDebug
		shardDebug = true
		defer func() { shardDebug = old }()
	}
	g := NewShardedEngine(5, Shards(2))
	defer g.Close()
	// Force concurrent windows with a cross link so both shards are active.
	a, b := buildPingPair(g, 50)
	_ = a
	_ = b
	var caught any
	// Shard 1's handler illegally reads shard 0's clock.
	g.Shard(1).At(10*Microsecond, func() {
		defer func() { caught = recover() }()
		g.Shard(0).Now()
	})
	// Keep shard 0 busy in the same window so it is worker-owned.
	g.Shard(0).At(10*Microsecond, func() {})
	g.RunUntil(20 * Microsecond)
	if caught == nil {
		t.Fatal("cross-shard Now() did not panic with shard checks on")
	}
}

// TestShardedSetUpCrossLink: failing a cross-shard link mid-run drops
// in-flight traffic without deadlock, and restoring it lets traffic resume.
func TestShardedSetUpCrossLink(t *testing.T) {
	g := NewShardedEngine(11, Shards(2))
	defer g.Close()
	a, b := buildPingPair(g, 1<<30)
	link := a.link
	// Flap from shard A's timeline, like StartFlap does.
	g.Shard(0).At(5*Millisecond, func() { link.SetUp(false) })
	g.Shard(0).At(10*Millisecond, func() { link.SetUp(true) })
	g.RunUntil(8 * Millisecond)
	seenDown := a.seen + b.seen
	g.RunUntil(9 * Millisecond)
	if a.seen+b.seen != seenDown {
		t.Fatalf("traffic flowed over a failed link: %d -> %d", seenDown, a.seen+b.seen)
	}
	// After restore the conversation is dead (frames were dropped, nobody
	// retries in this toy), so just assert the link is usable again.
	g.Shard(0).At(12*Millisecond, func() { link.SendFrom(a, []byte{9}) })
	g.RunUntil(20 * Millisecond)
	if a.seen+b.seen == seenDown {
		t.Fatal("restored link delivered nothing")
	}
}

// TestShardedSoloFastPath: a run where only one shard ever has events should
// still complete and stay bounded by cross arrivals it produces itself.
func TestShardedSoloFastPath(t *testing.T) {
	g := NewShardedEngine(2, Shards(3))
	defer g.Close()
	e := g.Shard(2)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			e.After(Microsecond, tick)
		}
	}
	e.At(0, func() { tick() })
	g.Run()
	if count != 1000 {
		t.Fatalf("solo shard ran %d/1000 ticks", count)
	}
	if g.Processed() != 1000 {
		t.Fatalf("processed %d", g.Processed())
	}
}

func BenchmarkShardGroupPingPong(b *testing.B) {
	g := NewShardedEngine(1, Shards(2))
	defer g.Close()
	a, _ := buildPingPair(g, 1<<30)
	_ = a
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RunFor(100 * Microsecond)
	}
}
