//go:build !race

package sim

// raceEnabled reports whether the binary was built with -race.
const raceEnabled = false
