package sim

import "testing"

// monNode records PortStateChanged notifications with the local virtual
// time they arrived at.
type monNode struct {
	eng    *Engine
	events []monEvent
}

type monEvent struct {
	at Time
	up bool
}

func (m *monNode) Receive(port int, frame []byte) {}

func (m *monNode) PortStateChanged(port int, up bool) {
	m.events = append(m.events, monEvent{at: m.eng.Now(), up: up})
}

// TestCrossLinkSetUpWANLookahead pins the one-lookahead SetUp contract at
// WAN-scale (millisecond) delays: flipping a cross-shard link mid-run from
// end A's shard notifies A at the flip instant and B exactly one lookahead
// later — the soonest a conservatively-synchronized remote shard may
// observe anything.
func TestCrossLinkSetUpWANLookahead(t *testing.T) {
	const wan = 5 * Millisecond
	g := NewShardedEngine(3, Shards(2))
	defer g.Close()
	a := &monNode{eng: g.Shard(0)}
	b := &monNode{eng: g.Shard(1)}
	l := NewLinkBetween(g.Shard(0), a, 0, g.Shard(1), b, 0, LinkConfig{PropDelay: wan, BandwidthBps: 10e9})
	if got := g.Lookahead(); got != wan {
		t.Fatalf("lookahead = %v, want WAN delay %v", got, wan)
	}

	// Keep both shards hot so neither sits idle past the flip times.
	for _, e := range []*Engine{g.Shard(0), g.Shard(1)} {
		eng := e
		var tick func()
		tick = func() {
			if eng.Now() < 60*Millisecond {
				eng.After(100*Microsecond, tick)
			}
		}
		eng.At(0, tick)
	}

	g.Shard(0).At(20*Millisecond, func() { l.SetUp(false) })
	g.Shard(0).At(40*Millisecond, func() { l.SetUp(true) })
	g.Run()

	want := func(m *monNode, name string, evs ...monEvent) {
		t.Helper()
		if len(m.events) != len(evs) {
			t.Fatalf("%s saw %d transitions %v, want %d", name, len(m.events), m.events, len(evs))
		}
		for i, w := range evs {
			if m.events[i] != w {
				t.Fatalf("%s transition %d = %+v, want %+v", name, i, m.events[i], w)
			}
		}
	}
	want(a, "near end", monEvent{20 * Millisecond, false}, monEvent{40 * Millisecond, true})
	want(b, "far end",
		monEvent{20*Millisecond + wan, false},
		monEvent{40*Millisecond + wan, true})
}

// TestCrossLinkSetUpIdleImmediate: the same flip while the group is parked
// takes effect on both ends at once — fault injection between runs must
// not need a warm-up window.
func TestCrossLinkSetUpIdleImmediate(t *testing.T) {
	g := NewShardedEngine(3, Shards(2))
	defer g.Close()
	a := &monNode{eng: g.Shard(0)}
	b := &monNode{eng: g.Shard(1)}
	l := NewLinkBetween(g.Shard(0), a, 0, g.Shard(1), b, 0, LinkConfig{PropDelay: 5 * Millisecond})
	l.SetUp(false)
	if l.Up() {
		t.Fatal("idle SetUp(false) left the link up")
	}
	g.RunFor(Millisecond)
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("idle flip notified a=%v b=%v, want one transition each", a.events, b.events)
	}
	if a.events[0].at != 0 || b.events[0].at != 0 {
		t.Fatalf("idle flip deferred: a=%v b=%v", a.events, b.events)
	}
}

// TestCrossShardWindowScalesWithWANDelay: the WAN propagation delay IS the
// conservative lookahead, so federating over milliseconds instead of
// microseconds must collapse the window count for the same virtual
// duration — the property that makes fabric-per-shard federation pay.
func TestCrossShardWindowScalesWithWANDelay(t *testing.T) {
	windows := func(prop Time) uint64 {
		g := NewShardedEngine(9, Shards(2))
		defer g.Close()
		a := &pingNode{eng: g.Shard(0), limit: 1 << 30}
		b := &pingNode{eng: g.Shard(1), limit: 1 << 30}
		l := NewLinkBetween(g.Shard(0), a, 0, g.Shard(1), b, 0, LinkConfig{PropDelay: prop, BandwidthBps: 10e9})
		a.link, b.link = l, l
		g.Shard(0).At(0, func() { l.SendFrom(a, []byte{1, 2, 3, 4}) })
		g.RunUntil(200 * Millisecond)
		par, solo := g.Windows()
		return par + solo
	}
	narrow := windows(50 * Microsecond)
	wide := windows(5 * Millisecond)
	if wide >= narrow {
		t.Fatalf("ms-scale WAN lookahead did not widen windows: %d (5ms) vs %d (50us)", wide, narrow)
	}
	if narrow < 10*wide {
		t.Fatalf("window reduction too small: %d (50us) vs %d (5ms), want >= 10x", narrow, wide)
	}
}
