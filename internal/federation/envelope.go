package federation

import (
	"encoding/binary"

	"dumbnet/internal/packet"
)

// The federation envelope: the overlay header carried inside ordinary
// DumbNet data payloads between a host and its border gateway, and raw on
// the WAN wire between gateways. Member fabrics stay untouched — switches
// forward the envelope like any other source-routed frame, and only the
// gateway glue and the destination host interpret it.

// Envelope kinds.
const (
	// EnvData carries an application payload across fabrics.
	EnvData byte = iota + 1
	// EnvEchoReq / EnvEchoRep implement the federated ping.
	EnvEchoReq
	EnvEchoRep
)

// envHeader is the fixed envelope header size:
// kind(1) srcFabric(1) dstFabric(1) ttl(1) src(6) dst(6) seq(8).
const envHeader = 24

// DefaultTTL bounds transit forwarding between fabrics; enough for any
// sane federation diameter, small enough to kill routing loops fast.
const DefaultTTL = 8

// Envelope is the decoded federation header.
type Envelope struct {
	Kind                 byte
	SrcFabric, DstFabric int
	TTL                  byte
	Src, Dst             packet.MAC
	Seq                  uint64
	// Payload aliases the decoded buffer; copy before retaining.
	Payload []byte
}

// Encode serializes the envelope into a fresh buffer.
func (e Envelope) Encode() []byte {
	b := make([]byte, envHeader+len(e.Payload))
	b[0] = e.Kind
	b[1] = byte(e.SrcFabric)
	b[2] = byte(e.DstFabric)
	b[3] = e.TTL
	copy(b[4:10], e.Src[:])
	copy(b[10:16], e.Dst[:])
	binary.BigEndian.PutUint64(b[16:24], e.Seq)
	copy(b[envHeader:], e.Payload)
	return b
}

// DecodeEnvelope parses an envelope header in place (Payload aliases b).
func DecodeEnvelope(b []byte) (Envelope, bool) {
	if len(b) < envHeader {
		return Envelope{}, false
	}
	e := Envelope{
		Kind:      b[0],
		SrcFabric: int(b[1]),
		DstFabric: int(b[2]),
		TTL:       b[3],
		Seq:       binary.BigEndian.Uint64(b[16:24]),
		Payload:   b[envHeader:],
	}
	copy(e.Src[:], b[4:10])
	copy(e.Dst[:], b[10:16])
	return e, true
}

// decTTL decrements the TTL byte in a raw envelope, reporting false when
// the envelope is malformed or the TTL is exhausted.
func decTTL(b []byte) bool {
	if len(b) < envHeader || b[3] == 0 {
		return false
	}
	b[3]--
	return true
}
