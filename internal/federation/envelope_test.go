package federation

import (
	"bytes"
	"testing"

	"dumbnet/internal/packet"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	e := Envelope{
		Kind:      EnvEchoReq,
		SrcFabric: 1,
		DstFabric: 3,
		TTL:       DefaultTTL,
		Src:       packet.MACFromUint64(0x10_0007),
		Dst:       packet.MACFromUint64(0x30_0042),
		Seq:       0xdeadbeefcafe,
		Payload:   []byte("metro"),
	}
	buf := e.Encode()
	got, ok := DecodeEnvelope(buf)
	if !ok {
		t.Fatal("round-trip decode failed")
	}
	if got.Kind != e.Kind || got.SrcFabric != e.SrcFabric || got.DstFabric != e.DstFabric ||
		got.TTL != e.TTL || got.Src != e.Src || got.Dst != e.Dst || got.Seq != e.Seq {
		t.Fatalf("header mangled: %+v vs %+v", got, e)
	}
	if !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("payload mangled: %q", got.Payload)
	}
}

func TestEnvelopeDecodeShort(t *testing.T) {
	if _, ok := DecodeEnvelope(make([]byte, envHeader-1)); ok {
		t.Fatal("decoded a truncated envelope")
	}
	if _, ok := DecodeEnvelope(nil); ok {
		t.Fatal("decoded nil")
	}
}

func TestEnvelopeTTLExpiry(t *testing.T) {
	e := Envelope{Kind: EnvData, TTL: 2}
	buf := e.Encode()
	if !decTTL(buf) {
		t.Fatal("ttl 2 -> 1 should pass")
	}
	if !decTTL(buf) {
		t.Fatal("ttl 1 -> 0 should pass")
	}
	if decTTL(buf) {
		t.Fatal("ttl 0 must expire")
	}
	got, ok := DecodeEnvelope(buf)
	if !ok || got.TTL != 0 {
		t.Fatalf("in-place decrement lost: ttl=%d ok=%v", got.TTL, ok)
	}
}
