package federation

import (
	"sync/atomic"

	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

// WANLink is one metro/WAN interconnect: a high-latency sim.Link whose two
// ends live on different member fabrics' shard engines (it is the
// cross-shard link that sets the group's lookahead). Each end terminates at
// a wanEnd node glued to that fabric's border gateway.
type WANLink struct {
	// ID orders links deterministically; gateway selection iterates by ID.
	ID int
	// A and B are the member fabric indices the link connects (A < B).
	A, B int
	// GwA and GwB are the border gateways terminating each end.
	GwA, GwB *Gateway
	// Link is the underlying simulated cable.
	Link *sim.Link

	endA, endB *wanEnd
}

// Peer returns the fabric index on the far side of fab (-1 when fab is not
// an endpoint).
func (w *WANLink) Peer(fab int) int {
	switch fab {
	case w.A:
		return w.B
	case w.B:
		return w.A
	}
	return -1
}

// gatewayFor returns the gateway terminating the link inside fab.
func (w *WANLink) gatewayFor(fab int) *Gateway {
	if fab == w.A {
		return w.GwA
	}
	return w.GwB
}

// farGateway returns the gateway on the opposite side of fab.
func (w *WANLink) farGateway(fab int) *Gateway {
	if fab == w.A {
		return w.GwB
	}
	return w.GwA
}

// sendFrom transmits a raw envelope from g's side of the link. The buffer
// is owned by the link after the call.
func (w *WANLink) sendFrom(g *Gateway, buf []byte) {
	if g == w.GwA {
		w.Link.SendFrom(w.endA, buf)
		return
	}
	w.Link.SendFrom(w.endB, buf)
}

// wanEnd is the sim.Node terminating one side of one WAN link. It is a
// dedicated node rather than the gateway's host agent: agents decode
// DumbNet frame formats, while the WAN wire carries raw envelopes. Receive
// runs on the owning fabric's shard engine.
type wanEnd struct {
	gw *Gateway
}

func (e *wanEnd) Receive(port int, frame []byte) { e.gw.fromWAN(frame) }

// GatewayStats counts a gateway's envelope dispositions.
type GatewayStats struct {
	// Relayed counts envelopes accepted from local hosts and put on a WAN
	// link; Delivered counts envelopes handed to local destination hosts;
	// Transited counts envelopes forwarded fabric-to-fabric through this
	// gateway.
	Relayed, Delivered, Transited uint64
	// Failovers counts selections that skipped the first-choice WAN link
	// because it was down, flagged, or ended at a crashed gateway.
	Failovers uint64
	// DropDown counts envelopes eaten while the gateway was crashed;
	// DropNoPath counts envelopes with no usable WAN link; DropBad counts
	// malformed or TTL-exhausted envelopes.
	DropDown, DropNoPath, DropBad uint64
}

// Gateway is one fabric's border: an existing fabric host designated to
// relay federation envelopes between its fabric and the WAN links
// terminating at it. All datapath activity (RelayOut from local dispatch,
// fromWAN from link delivery) runs on the gateway's own shard engine;
// Crash/Restart and cross-shard health reads go through atomics.
type Gateway struct {
	fabric int
	mac    packet.MAC
	hub    *RegionalHub
	links  []*WANLink // attached WAN links in ID order

	down atomic.Bool

	// deliver injects an envelope into the local fabric toward a local
	// destination host; installed by the embedding layer (core), which owns
	// the host agents.
	deliver func(dst packet.MAC, env []byte)

	stats GatewayStats
}

// NewGateway declares host mac of the given fabric a border gateway.
func NewGateway(fabric int, mac packet.MAC, hub *RegionalHub) *Gateway {
	return &Gateway{fabric: fabric, mac: mac, hub: hub}
}

// MAC returns the gateway's host address.
func (g *Gateway) MAC() packet.MAC { return g.mac }

// Fabric returns the member fabric index the gateway belongs to.
func (g *Gateway) Fabric() int { return g.fabric }

// Links returns the WAN links terminating at this gateway, in ID order.
func (g *Gateway) Links() []*WANLink { return g.links }

// Stats returns the envelope disposition counters. Read while the
// simulation is parked.
func (g *Gateway) Stats() GatewayStats { return g.stats }

// SetDeliver installs the local-fabric injection hook.
func (g *Gateway) SetDeliver(fn func(dst packet.MAC, env []byte)) { g.deliver = fn }

// attach registers a WAN link terminating here (links arrive in ID order).
func (g *Gateway) attach(w *WANLink) { g.links = append(g.links, w) }

// Down reports whether the gateway is crashed. Safe from any shard.
func (g *Gateway) Down() bool { return g.down.Load() }

// Crash power-fails the gateway: every envelope touching it is eaten until
// Restart. Bumps the federation health generation so cached regional
// routes through this gateway go stale (never-widen).
func (g *Gateway) Crash() {
	if !g.down.Swap(true) && g.hub != nil {
		g.hub.noteGatewayDown(1)
	}
}

// Restart brings a crashed gateway back.
func (g *Gateway) Restart() {
	if g.down.Swap(false) && g.hub != nil {
		g.hub.noteGatewayDown(-1)
	}
}

// pickLink chooses the WAN link for an envelope leaving g toward dstFab:
// the first link by ID that heads the right way, is up, ends at a live
// gateway, and is not telemetry-flagged. If only flagged links remain they
// are used anyway (a flag steers, a failure forbids); choosing anything
// but the first-choice candidate counts as a failover. With no direct link
// to dstFab, any live link leaving the fabric is used (transit; the TTL
// bounds wandering).
func (g *Gateway) pickLink(dstFab int) *WANLink {
	var flagged, transit *WANLink
	skipped := false
	for _, w := range g.links {
		peer := w.Peer(g.fabric)
		if !w.Link.Up() || w.farGateway(g.fabric).Down() {
			skipped = true
			continue
		}
		if peer != dstFab {
			if transit == nil {
				transit = w
			}
			continue
		}
		if g.hub != nil && g.hub.WANFlagged(w.ID) {
			skipped = true
			if flagged == nil {
				flagged = w
			}
			continue
		}
		if skipped {
			g.stats.Failovers++
		}
		return w
	}
	if flagged != nil {
		g.stats.Failovers++
		return flagged
	}
	if transit != nil {
		if skipped {
			g.stats.Failovers++
		}
		return transit
	}
	return nil
}

// RelayOut accepts an envelope from a local host (core's kindFedRelay
// dispatch) and puts it on a WAN link. Runs on the gateway's shard engine.
func (g *Gateway) RelayOut(env []byte) {
	if g.Down() {
		g.stats.DropDown++
		return
	}
	e, ok := DecodeEnvelope(env)
	if !ok {
		g.stats.DropBad++
		return
	}
	w := g.pickLink(e.DstFabric)
	if w == nil {
		g.stats.DropNoPath++
		return
	}
	g.stats.Relayed++
	buf := make([]byte, len(env))
	copy(buf, env)
	w.sendFrom(g, buf)
}

// fromWAN handles an envelope arriving off a WAN link: deliver locally
// when this is the destination fabric, otherwise forward toward it. Runs
// on the gateway's shard engine; the frame buffer is owned here.
func (g *Gateway) fromWAN(frame []byte) {
	if g.Down() {
		g.stats.DropDown++
		return
	}
	e, ok := DecodeEnvelope(frame)
	if !ok {
		g.stats.DropBad++
		return
	}
	if e.DstFabric == g.fabric {
		if g.deliver != nil {
			g.stats.Delivered++
			g.deliver(e.Dst, frame)
		}
		return
	}
	if !decTTL(frame) {
		g.stats.DropBad++
		return
	}
	w := g.pickLink(e.DstFabric)
	if w == nil {
		g.stats.DropNoPath++
		return
	}
	g.stats.Transited++
	w.sendFrom(g, frame)
}

// NewWANLink wires a WAN link between two gateways on their respective
// shard engines. Call while the group is idle (cross-shard links cannot be
// registered mid-window); cfg.PropDelay must be positive, and the smallest
// WAN delay becomes the group's lookahead.
func NewWANLink(id int, ga, gb *Gateway, engA, engB *sim.Engine, cfg sim.LinkConfig) *WANLink {
	w := &WANLink{ID: id, A: ga.fabric, B: gb.fabric, GwA: ga, GwB: gb}
	w.endA = &wanEnd{gw: ga}
	w.endB = &wanEnd{gw: gb}
	w.Link = sim.NewLinkBetween(engA, w.endA, 0, engB, w.endB, 0, cfg)
	ga.attach(w)
	gb.attach(w)
	return w
}
