package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"dumbnet/internal/telemetry"
)

// RegionalHub rolls the member fabrics' telemetry hubs up into one
// federation-wide view and adds the plane the members cannot see: WAN-link
// health. Per-link flags are raised on failure (via Link.Watch) or by the
// operator/telemetry pipeline (FlagWAN) and steer gateway selection toward
// alternates; every health transition bumps a generation counter that the
// Regional resolver folds into its cache-freshness vector, so a flagged or
// downed WAN link invalidates every cached inter-fabric route at once.
//
// Link watch callbacks fire on whichever shard engine performs the flip —
// a failure on the near shard, a restore on the far one — so all mutable
// state here is atomic. The merged read methods (TelemetryView) follow the
// telemetry.Hub contract: driver goroutine only, simulation parked.
type RegionalHub struct {
	members []*telemetry.Hub // per-fabric hubs; nil when a member runs without telemetry
	names   []string

	flags        []atomic.Bool // by WAN link ID
	gen          atomic.Uint64
	wanRaised    atomic.Uint64
	wanCleared   atomic.Uint64
	gatewaysDown atomic.Int64
}

// NewRegionalHub returns a hub tracking nWAN WAN links.
func NewRegionalHub(nWAN int) *RegionalHub {
	return &RegionalHub{flags: make([]atomic.Bool, nWAN)}
}

// AddMember registers one member fabric's telemetry hub (nil is allowed:
// the member then contributes nothing to the rolled-up counters).
func (h *RegionalHub) AddMember(name string, hub *telemetry.Hub) {
	h.names = append(h.names, name)
	h.members = append(h.members, hub)
}

// WatchWAN subscribes the hub to a WAN link's up/down transitions: a
// failure raises the link's flag, a restore clears it.
func (h *RegionalHub) WatchWAN(w *WANLink) {
	id := w.ID
	w.Link.Watch(func(up bool) {
		if up {
			h.ClearWAN(id)
		} else {
			h.FlagWAN(id)
		}
	})
}

// FlagWAN raises a WAN link's health flag (idempotent). Gateway selection
// steers inter-fabric flows off flagged links while an alternate exists.
func (h *RegionalHub) FlagWAN(id int) {
	if !h.flags[id].Swap(true) {
		h.wanRaised.Add(1)
		h.gen.Add(1)
	}
}

// ClearWAN clears a WAN link's health flag (idempotent).
func (h *RegionalHub) ClearWAN(id int) {
	if h.flags[id].Swap(false) {
		h.wanCleared.Add(1)
		h.gen.Add(1)
	}
}

// WANFlagged reports one WAN link's flag. Safe from any shard.
func (h *RegionalHub) WANFlagged(id int) bool {
	if id < 0 || id >= len(h.flags) {
		return false
	}
	return h.flags[id].Load()
}

// WANFlaggedCount counts currently flagged WAN links.
func (h *RegionalHub) WANFlaggedCount() int {
	n := 0
	for i := range h.flags {
		if h.flags[i].Load() {
			n++
		}
	}
	return n
}

// Gen returns the federation health generation: it advances on every WAN
// flag transition and gateway crash/restart, and invalidates the Regional
// resolver's cached routes.
func (h *RegionalHub) Gen() uint64 { return h.gen.Load() }

// noteGatewayDown records a gateway crash (+1) or restart (-1) and bumps
// the health generation.
func (h *RegionalHub) noteGatewayDown(delta int64) {
	h.gatewaysDown.Add(delta)
	h.gen.Add(1)
}

// GatewaysDown counts currently crashed gateways.
func (h *RegionalHub) GatewaysDown() int { return int(h.gatewaysDown.Load()) }

// controller.TelemetryView: the rolled-up federation scoreboard. Each
// method sums the member hubs and adds the WAN plane where it has one.

// Flagged counts flagged subjects across every member plus flagged WAN
// links.
func (h *RegionalHub) Flagged() int {
	n := h.WANFlaggedCount()
	for _, m := range h.members {
		if m != nil {
			n += m.Flagged()
		}
	}
	return n
}

// Raised totals flag raises (member subjects + WAN links).
func (h *RegionalHub) Raised() uint64 {
	n := h.wanRaised.Load()
	for _, m := range h.members {
		if m != nil {
			n += m.Raised()
		}
	}
	return n
}

// Cleared totals flag clears (member subjects + WAN links).
func (h *RegionalHub) Cleared() uint64 {
	n := h.wanCleared.Load()
	for _, m := range h.members {
		if m != nil {
			n += m.Cleared()
		}
	}
	return n
}

// Flushes totals completed telemetry windows across members.
func (h *RegionalHub) Flushes() uint64 {
	var n uint64
	for _, m := range h.members {
		if m != nil {
			n += m.Flushes()
		}
	}
	return n
}

// TapDropped totals records lost to full tap buffers across members.
func (h *RegionalHub) TapDropped() uint64 {
	var n uint64
	for _, m := range h.members {
		if m != nil {
			n += m.TapDropped()
		}
	}
	return n
}

// HealBreaches totals SLO-violating recoveries across members.
func (h *RegionalHub) HealBreaches() uint64 {
	var n uint64
	for _, m := range h.members {
		if m != nil {
			n += m.HealBreaches()
		}
	}
	return n
}

// WANStat is one WAN link's health in a regional snapshot.
type WANStat struct {
	ID      int  `json:"wan"`
	Flagged bool `json:"flagged,omitempty"`
}

// RegionalSnapshot is the merged federation view at one instant.
type RegionalSnapshot struct {
	Gen          uint64                         `json:"health_gen"`
	Flagged      int                            `json:"flagged"`
	GatewaysDown int                            `json:"gateways_down"`
	WAN          []WANStat                      `json:"wan"`
	Fabrics      map[string]*telemetry.Snapshot `json:"fabrics,omitempty"`
}

// Snapshot merges the member snapshots under the WAN health plane. Driver
// goroutine only (sim parked).
func (h *RegionalHub) Snapshot() *RegionalSnapshot {
	s := &RegionalSnapshot{
		Gen:          h.Gen(),
		Flagged:      h.Flagged(),
		GatewaysDown: h.GatewaysDown(),
	}
	for i := range h.flags {
		s.WAN = append(s.WAN, WANStat{ID: i, Flagged: h.flags[i].Load()})
	}
	for i, m := range h.members {
		if m == nil {
			continue
		}
		if s.Fabrics == nil {
			s.Fabrics = make(map[string]*telemetry.Snapshot, len(h.members))
		}
		s.Fabrics[h.names[i]] = m.Snapshot()
	}
	return s
}

// SnapshotJSON renders the merged regional snapshot as indented JSON.
func (h *RegionalHub) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(h.Snapshot(), "", "  ")
}

// WriteProm renders the federation plane in Prometheus text exposition
// format (dumbnet_federation_* family). Member fabrics export their own
// dumbnet_telemetry_* families through their controllers; duplicating them
// here would emit repeated metric families, so only the regional plane is
// written.
func (h *RegionalHub) WriteProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE dumbnet_federation_health_gen counter\n")
	p("dumbnet_federation_health_gen %d\n", h.Gen())
	p("# TYPE dumbnet_federation_flagged gauge\n")
	p("dumbnet_federation_flagged %d\n", h.Flagged())
	p("# TYPE dumbnet_federation_gateways_down gauge\n")
	p("dumbnet_federation_gateways_down %d\n", h.GatewaysDown())
	p("# TYPE dumbnet_federation_wan_flagged gauge\n")
	for i := range h.flags {
		v := 0
		if h.flags[i].Load() {
			v = 1
		}
		p("dumbnet_federation_wan_flagged{wan=\"%d\"} %d\n", i, v)
	}
	p("# TYPE dumbnet_federation_wan_flags_raised_total counter\n")
	p("dumbnet_federation_wan_flags_raised_total %d\n", h.wanRaised.Load())
	p("# TYPE dumbnet_federation_wan_flags_cleared_total counter\n")
	p("dumbnet_federation_wan_flags_cleared_total %d\n", h.wanCleared.Load())
	return err
}
