// Package federation interconnects independently built DumbNet fabrics
// over high-latency metro/WAN links into one addressable deployment — the
// hierarchical control plane the paper's single-fabric design stops short
// of. Each member fabric keeps its own controller, which stays
// authoritative for intra-fabric route queries; a Regional resolver answers
// inter-fabric queries by composing local path-graph answers from the two
// member controllers with a WAN hop between border gateways, under its own
// generation-invalidated cache. A RegionalHub rolls per-fabric telemetry
// hubs up into one federation view whose scoreboard includes WAN-link
// health, and gateway selection steers inter-fabric traffic across
// alternate gateways when a WAN link is flagged or down.
//
// The simulation substrate maps one member fabric to one shard engine of a
// sim.ShardGroup: the WAN propagation delay becomes the group's cross-shard
// lookahead, so federated runs get wide conservative windows and real shard
// parallelism — milliseconds of WAN latency buy thousands of times the
// lookahead a single fabric's 500ns links allow.
//
// The package deliberately does not import core or chaos: core embeds it
// (core.Federate / core.WithFederation) and supplies the host-side
// dispatch glue; chaos drives it through an interface.
package federation

import "errors"

// Errors.
var (
	// ErrUnknownHost marks a query endpoint that no member fabric owns.
	ErrUnknownHost = errors.New("federation: host not in any member fabric")
	// ErrNoWANPath marks an inter-fabric query with no usable WAN link:
	// every candidate is down or terminates at a crashed gateway. The
	// resolver refuses rather than answering stale (never-widen).
	ErrNoWANPath = errors.New("federation: no live WAN path between fabrics")
	// ErrFederatedScope marks an inter-fabric query carrying a tenant or
	// multicast group: those planes are fabric-local in this design.
	ErrFederatedScope = errors.New("federation: tenant and multicast scopes do not federate")
	// ErrEnvelope marks a malformed federation envelope.
	ErrEnvelope = errors.New("federation: malformed envelope")
)
