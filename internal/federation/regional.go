package federation

import (
	"sync"

	"dumbnet/internal/controller"
	"dumbnet/internal/packet"
	"dumbnet/internal/topo"
)

// Member is one fabric in the federation as the regional plane sees it:
// its (authoritative) local controller, its border gateways, and its host
// population.
type Member struct {
	Name     string
	Index    int
	Ctrl     *controller.Controller
	Gateways []*Gateway
}

// Route is the regional answer to a route query. For an inter-fabric query
// it names the egress gateway, the WAN link, and the two locally resolved
// legs; for an intra-fabric query it wraps the owning controller's answer.
// Fields alias cache-owned data — a warm Resolve allocates nothing — so
// callers must not mutate the wire slices.
type Route struct {
	Src, Dst             packet.MAC
	SrcFabric, DstFabric int

	// Inter-fabric fields (SrcFabric != DstFabric).
	Gateway    packet.MAC // egress gateway host in the source fabric
	FarGateway packet.MAC // ingress gateway host in the destination fabric
	WAN        int        // chosen WAN link ID
	SrcWire    []byte     // src → egress gateway path wire (nil when src is the gateway)
	DstWire    []byte     // far gateway → dst path wire (nil when dst is the gateway)

	// Local is the member controller's answer for intra-fabric queries.
	Local controller.RouteAnswer
}

// Intra reports whether the route stays inside one fabric.
func (r Route) Intra() bool { return r.SrcFabric == r.DstFabric }

// fedKey identifies one cached inter-fabric route.
type fedKey struct {
	src, dst packet.MAC
}

// fedEntry is one cached route with its freshness vector: both member
// controllers' topology identity, patch epoch, and topology generation,
// plus the federation health generation. Any member repair, controller
// restart, WAN flag transition, or gateway crash makes the entry stale and
// the next Resolve recomputes over the healed view — the same lazy
// generation-invalidation discipline the local route service uses, lifted
// one level up.
type fedEntry struct {
	srcTop, dstTop *topo.Topology
	srcVer, dstVer uint64
	srcGen, dstGen uint64
	wanGen         uint64
	route          Route
}

func (e *fedEntry) fresh(sm, dm *controller.Controller, wanGen uint64) bool {
	return e.wanGen == wanGen &&
		e.srcTop == sm.Master() && e.srcVer == sm.Version() && e.srcGen == e.srcTop.Generation() &&
		e.dstTop == dm.Master() && e.dstVer == dm.Version() && e.dstGen == e.dstTop.Generation()
}

// RegionalStats counts resolver cache outcomes.
type RegionalStats struct {
	Hits, Misses, Invalidated uint64
	// Refused counts inter-fabric queries turned away with no live WAN
	// path (the never-widen refusals).
	Refused uint64
}

// Regional is the federation's root resolver: it owns the host→fabric
// directory and a generation-invalidated cache of composed inter-fabric
// routes, and delegates intra-fabric queries to the owning member's
// controller untouched. Resolve is safe from concurrent shard workers (the
// federated echo reply resolves its return route in-sim); the cache is
// guarded by a mutex, which keeps the warm path allocation-free.
type Regional struct {
	mu      sync.Mutex
	members []*Member
	hostFab map[packet.MAC]int
	links   []*WANLink
	hub     *RegionalHub
	cache   map[fedKey]*fedEntry
	stats   RegionalStats
}

// NewRegional returns an empty regional resolver over the federation's
// WAN links and health hub. Members are added with AddMember.
func NewRegional(hub *RegionalHub, links []*WANLink) *Regional {
	return &Regional{
		hostFab: make(map[packet.MAC]int),
		links:   links,
		hub:     hub,
		cache:   make(map[fedKey]*fedEntry),
	}
}

// AddMember registers one member fabric and its host population.
func (r *Regional) AddMember(name string, ctrl *controller.Controller, gws []*Gateway, hosts []packet.MAC) *Member {
	m := &Member{Name: name, Index: len(r.members), Ctrl: ctrl, Gateways: gws}
	r.members = append(r.members, m)
	for _, h := range hosts {
		r.hostFab[h] = m.Index
	}
	return m
}

// Members returns the member fabrics in index order.
func (r *Regional) Members() []*Member { return r.members }

// Hub returns the federation health hub.
func (r *Regional) Hub() *RegionalHub { return r.hub }

// FabricOf returns the member fabric owning a host.
func (r *Regional) FabricOf(m packet.MAC) (int, bool) {
	f, ok := r.hostFab[m]
	return f, ok
}

// Stats returns the resolver cache counters. Read while the simulation is
// parked.
func (r *Regional) Stats() RegionalStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Len reports how many inter-fabric routes are currently cached.
func (r *Regional) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// Invalidate drops every cached inter-fabric route. Generation checks make
// this unnecessary for correctness; benchmarks use it to force cold
// resolves.
func (r *Regional) Invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.cache {
		delete(r.cache, k)
	}
}

// Resolve answers a route query anywhere in the federation. Queries whose
// endpoints share a fabric are delegated to that fabric's controller (any
// scope the controller accepts); inter-fabric queries are composed here
// and must be plain unicast (tenants and multicast groups do not
// federate). A warm inter-fabric resolve is a map probe plus freshness
// check and performs zero allocations.
func (r *Regional) Resolve(q controller.RouteQuery) (Route, error) {
	sf, ok := r.hostFab[q.Src]
	if !ok {
		return Route{}, ErrUnknownHost
	}
	df, ok := r.hostFab[q.Dst]
	if !ok && q.Group == 0 {
		return Route{}, ErrUnknownHost
	}
	if q.Group != 0 {
		// Trees are fabric-local; the group must resolve at Src's fabric.
		df = sf
	}
	if sf == df {
		lq := q
		if lq.Scope == controller.ScopeFabric {
			lq.Scope = controller.ScopeAuto
		}
		ans, err := r.members[sf].Ctrl.Resolve(lq)
		if err != nil {
			return Route{}, err
		}
		return Route{Src: q.Src, Dst: q.Dst, SrcFabric: sf, DstFabric: df, Local: ans}, nil
	}
	if q.Tenant != "" || q.Group != 0 {
		return Route{}, ErrFederatedScope
	}

	sm, dm := r.members[sf].Ctrl, r.members[df].Ctrl
	wanGen := r.hub.Gen()
	key := fedKey{src: q.Src, dst: q.Dst}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.cache[key]; ok {
		if e.fresh(sm, dm, wanGen) {
			r.stats.Hits++
			return e.route, nil
		}
		r.stats.Invalidated++
		delete(r.cache, key)
	}
	r.stats.Misses++
	route, err := r.compose(q, sf, df, sm, dm)
	if err != nil {
		return Route{}, err
	}
	r.cache[key] = &fedEntry{
		srcTop: sm.Master(), srcVer: sm.Version(), srcGen: sm.Master().Generation(),
		dstTop: dm.Master(), dstVer: dm.Version(), dstGen: dm.Master().Generation(),
		wanGen: wanGen,
		route:  route,
	}
	return route, nil
}

// compose builds an inter-fabric route: pick the healthiest WAN link by ID
// order (skipping downed links, crashed gateways, and — while an
// unflagged alternative could still exist — flagged links), then resolve
// the two local legs at the member controllers. Refusal on no live link is
// deliberate: a stale route over a dead WAN link would widen the blast
// radius of the failure.
func (r *Regional) compose(q controller.RouteQuery, sf, df int, sm, dm *controller.Controller) (Route, error) {
	var chosen, flagged *WANLink
	for _, w := range r.links {
		if w.Peer(sf) != df && w.Peer(df) != sf {
			continue
		}
		if !w.Link.Up() || w.gatewayFor(sf).Down() || w.gatewayFor(df).Down() {
			continue
		}
		if r.hub.WANFlagged(w.ID) {
			if flagged == nil {
				flagged = w
			}
			continue
		}
		chosen = w
		break
	}
	if chosen == nil {
		chosen = flagged
	}
	if chosen == nil {
		r.stats.Refused++
		return Route{}, ErrNoWANPath
	}
	gwNear, gwFar := chosen.gatewayFor(sf), chosen.gatewayFor(df)
	route := Route{
		Src: q.Src, Dst: q.Dst,
		SrcFabric: sf, DstFabric: df,
		Gateway: gwNear.MAC(), FarGateway: gwFar.MAC(),
		WAN: chosen.ID,
	}
	if q.Src != gwNear.MAC() {
		ans, err := sm.Resolve(controller.RouteQuery{Src: q.Src, Dst: gwNear.MAC(), Scope: controller.ScopeGlobal})
		if err != nil {
			return Route{}, err
		}
		route.SrcWire = ans.Wire
	}
	if q.Dst != gwFar.MAC() {
		ans, err := dm.Resolve(controller.RouteQuery{Src: gwFar.MAC(), Dst: q.Dst, Scope: controller.ScopeGlobal})
		if err != nil {
			return Route{}, err
		}
		route.DstWire = ans.Wire
	}
	return route, nil
}
