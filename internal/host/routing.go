package host

import (
	"dumbnet/internal/sim"
)

// Route choosers implement the pluggable routing function of §6.1/§6.2: the
// default binds each flow to one of the k cached paths; the flowlet chooser
// re-randomizes the choice whenever a flow pauses longer than the flowlet
// timeout, spreading bursts over all available paths without reordering
// packets inside a burst.

// RouteChooser selects a path index in [0, nPaths) for a flow.
type RouteChooser interface {
	Choose(now sim.Time, flow FlowKey, nPaths int) int
}

// StickyChooser hashes each flow to one path and keeps it there — the
// default per-flow binding ("PathTable remembers the previously used choice
// for each flow, and binds a flow to a particular path", §5.2).
type StickyChooser struct {
	bound map[FlowKey]int
}

// NewStickyChooser creates the default chooser.
func NewStickyChooser() *StickyChooser {
	return &StickyChooser{bound: make(map[FlowKey]int)}
}

// Choose implements RouteChooser.
func (c *StickyChooser) Choose(now sim.Time, flow FlowKey, nPaths int) int {
	if nPaths <= 1 {
		return 0
	}
	if idx, ok := c.bound[flow]; ok && idx < nPaths {
		return idx
	}
	idx := int(flow.hash() % uint64(nPaths))
	c.bound[flow] = idx
	return idx
}

// Rebind clears a flow's binding (after failover the next packet re-hashes).
func (c *StickyChooser) Rebind(flow FlowKey) { delete(c.bound, flow) }

// FlowletChooser implements flowlet-based traffic engineering (§6.2): the
// routing function keys on a flowlet ID — the flow key plus a counter that
// advances whenever the inter-packet gap exceeds Timeout — so consecutive
// bursts of the same flow can take different paths while packets within a
// burst stay ordered on one path.
type FlowletChooser struct {
	// Timeout is the idle gap that starts a new flowlet.
	Timeout sim.Time
	state   map[FlowKey]*flowletState
}

type flowletState struct {
	lastSeen sim.Time
	id       uint64
}

// NewFlowletChooser creates a flowlet router with the given idle timeout.
func NewFlowletChooser(timeout sim.Time) *FlowletChooser {
	return &FlowletChooser{Timeout: timeout, state: make(map[FlowKey]*flowletState)}
}

// Choose implements RouteChooser.
func (c *FlowletChooser) Choose(now sim.Time, flow FlowKey, nPaths int) int {
	if nPaths <= 1 {
		return 0
	}
	st, ok := c.state[flow]
	if !ok {
		st = &flowletState{lastSeen: now}
		c.state[flow] = st
	} else {
		if now-st.lastSeen > c.Timeout {
			st.id++ // flowlet expired: bump the flowlet ID (§6.2)
		}
		st.lastSeen = now
	}
	return int((flow.hash() + st.id*0x9E3779B97F4A7C15) % uint64(nPaths))
}

// FlowletID exposes the current flowlet counter (for tests/observability).
func (c *FlowletChooser) FlowletID(flow FlowKey) uint64 {
	if st, ok := c.state[flow]; ok {
		return st.id
	}
	return 0
}

// RoundRobinChooser cycles packets across all paths — packet-level
// spraying, used in ablations to contrast with flowlet TE.
type RoundRobinChooser struct {
	next map[FlowKey]int
}

// NewRoundRobinChooser creates a per-flow round-robin sprayer.
func NewRoundRobinChooser() *RoundRobinChooser {
	return &RoundRobinChooser{next: make(map[FlowKey]int)}
}

// Choose implements RouteChooser.
func (c *RoundRobinChooser) Choose(now sim.Time, flow FlowKey, nPaths int) int {
	if nPaths <= 1 {
		return 0
	}
	idx := c.next[flow] % nPaths
	c.next[flow] = idx + 1
	return idx
}

// SinglePathChooser always uses path 0 — the "DumbNet single path"
// baseline of Fig 13.
type SinglePathChooser struct{}

// Choose implements RouteChooser.
func (SinglePathChooser) Choose(now sim.Time, flow FlowKey, nPaths int) int { return 0 }
