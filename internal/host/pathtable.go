package host

import (
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
	"dumbnet/internal/trace"
)

// The two-level path cache (paper §5.2, Figure 4): the TopoCache aggregates
// controller-issued path graphs into a partial topology; the PathTable is
// the per-destination fast path, caching k shortest paths plus the backup
// path and remembering which path each flow uses.

// HopRef identifies one directed link a path traverses, as (switch, out
// port) — the granularity of link-failure notifications.
type HopRef struct {
	Switch packet.SwitchID
	Port   packet.Tag
}

// CachedPath is one ready-to-use route.
type CachedPath struct {
	Tags packet.Path
	Hops []HopRef // for invalidation on link events
}

// usesLink reports whether the path crosses (sw, port) in either direction.
func (p *CachedPath) usesLink(sw packet.SwitchID, port packet.Tag) bool {
	for _, h := range p.Hops {
		if h.Switch == sw && h.Port == port {
			return true
		}
	}
	return false
}

// TableEntry is the PathTable record for one destination.
type TableEntry struct {
	Paths  []CachedPath // k shortest, index-addressed by the route chooser
	Backup *CachedPath  // the failure-disjoint backup (§4.3)
	// Rerouted marks an entry repaired by failure recovery; the next send
	// through it clears the flag and closes the recovery timeline with a
	// first-packet record.
	Rerouted bool
}

// PathTable maps destination MAC to cached routes.
type PathTable struct {
	k       int
	entries map[packet.MAC]*TableEntry
}

// NewPathTable creates a table caching up to k paths per destination.
func NewPathTable(k int) *PathTable {
	return &PathTable{k: k, entries: make(map[packet.MAC]*TableEntry)}
}

// Lookup returns the entry for dst, or nil.
func (t *PathTable) Lookup(dst packet.MAC) *TableEntry { return t.entries[dst] }

// Install replaces the entry for dst.
func (t *PathTable) Install(dst packet.MAC, e *TableEntry) { t.entries[dst] = e }

// Invalidate removes the entry for dst.
func (t *PathTable) Invalidate(dst packet.MAC) { delete(t.entries, dst) }

// Len reports the number of destinations cached.
func (t *PathTable) Len() int { return len(t.entries) }

// Destinations lists cached destinations (order unspecified).
func (t *PathTable) Destinations() []packet.MAC {
	out := make([]packet.MAC, 0, len(t.entries))
	for m := range t.entries {
		out = append(out, m)
	}
	return out
}

// DropLink removes every cached path crossing (sw, port), promoting the
// backup when the primary set empties. It returns the destinations whose
// entries became unusable (caller should recompute or re-query those) and
// how many surviving entries it rerouted — entries that lost paths but
// still have a usable route. Rerouted entries are flagged so the next send
// through them records the recovery timeline's first-packet span.
func (t *PathTable) DropLink(sw packet.SwitchID, port packet.Tag) (dead []packet.MAC, rerouted int) {
	for dst, e := range t.entries {
		before := len(e.Paths)
		kept := e.Paths[:0]
		for _, p := range e.Paths {
			if !p.usesLink(sw, port) {
				kept = append(kept, p)
			}
		}
		e.Paths = kept
		changed := len(e.Paths) < before
		if e.Backup != nil && e.Backup.usesLink(sw, port) {
			e.Backup = nil
		}
		if len(e.Paths) == 0 {
			if e.Backup != nil {
				// Fail over to the backup path immediately (§5.2:
				// "caching backup paths allows the hosts to failover
				// fast").
				e.Paths = append(e.Paths, *e.Backup)
				e.Backup = nil
			} else {
				delete(t.entries, dst)
				dead = append(dead, dst)
				continue
			}
		}
		if changed {
			e.Rerouted = true
			rerouted++
		}
	}
	return dead, rerouted
}

// routesFromView computes up to k cached paths from the local view.
func routesFromView(view *topo.Subgraph, src, dst packet.MAC, k int) ([]CachedPath, error) {
	sat, err := view.HostAt(src)
	if err != nil {
		return nil, err
	}
	dat, err := view.HostAt(dst)
	if err != nil {
		return nil, err
	}
	sps, err := topo.KShortestPaths(view, sat.Switch, dat.Switch, k)
	if err != nil {
		return nil, err
	}
	out := make([]CachedPath, 0, len(sps))
	for _, sp := range sps {
		cp, err := cachedPathFor(view, sp, dst)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// cachedPathFor converts a switch path into tags plus hop references.
func cachedPathFor(view *topo.Subgraph, sp topo.SwitchPath, dst packet.MAC) (CachedPath, error) {
	tags, err := view.TagsForSwitchPath(sp, dst)
	if err != nil {
		return CachedPath{}, err
	}
	hops := make([]HopRef, 0, len(tags))
	for i, sw := range sp {
		hops = append(hops, HopRef{Switch: sw, Port: tags[i]})
	}
	return CachedPath{Tags: tags, Hops: hops}, nil
}

// fillTableFromCache recomputes the PathTable entry for dst from the
// TopoCache, reporting success.
func (a *Agent) fillTableFromCache(dst packet.MAC) bool {
	paths, err := routesFromView(a.cache, a.mac, dst, a.cfg.KPaths)
	if err != nil || len(paths) == 0 {
		return false
	}
	a.table.Install(dst, &TableEntry{Paths: a.filterSuspects(paths)})
	return true
}

// InstallRoute lets an application install a custom route for dst (§6.1).
// When VerifyPaths is set, the route must walk to dst within the TopoCache
// view or it is rejected — the "path verifier" that keeps application
// routing inside policy.
func (a *Agent) InstallRoute(dst packet.MAC, tags packet.Path) error {
	if a.cfg.VerifyPaths {
		if err := a.VerifyRoute(dst, tags); err != nil {
			a.stats.VerifyFails++
			return err
		}
	}
	e := a.table.Lookup(dst)
	if e == nil {
		e = &TableEntry{}
	}
	// Deduplicate: replace an identical cached path instead of shadowing
	// it (keeps the k-path set diverse for multi-path choosers).
	kept := e.Paths[:0]
	for _, p := range e.Paths {
		if string(p.Tags) != string(tags) {
			kept = append(kept, p)
		}
	}
	e.Paths = append([]CachedPath{{Tags: tags.Clone()}}, kept...)
	a.table.Install(dst, e)
	return nil
}

// VerifyRoute checks a tag path against the TopoCache: it must start at our
// switch and terminate at dst's cached attachment (Table 2 "Path Verify").
func (a *Agent) VerifyRoute(dst packet.MAC, tags packet.Path) error {
	if a.attach.Host.IsZero() {
		return ErrNoController
	}
	dat, err := a.cache.HostAt(dst)
	if err != nil {
		return ErrVerifyFailed
	}
	cur := a.attach.Switch
	for i, tag := range tags {
		if i == len(tags)-1 {
			if cur == dat.Switch && tag == dat.Port {
				return nil
			}
			return ErrVerifyFailed
		}
		next := packet.SwitchID(0)
		found := false
		for _, nb := range a.cache.Neighbors(cur) {
			if nb.Port == tag {
				next, found = nb.Sw, true
				break
			}
		}
		if !found {
			return ErrVerifyFailed
		}
		cur = next
	}
	return ErrVerifyFailed
}

// requestPath sends (or re-sends) a MsgPathRequest for dst.
func (a *Agent) requestPath(dst packet.MAC) {
	if a.requestOpen[dst] {
		return
	}
	a.requestOpen[dst] = true
	a.reqStart[dst] = a.eng.Now()
	a.sendPathRequest(dst, 0)
}

func (a *Agent) sendPathRequest(dst packet.MAC, attempt int) {
	if !a.requestOpen[dst] {
		return
	}
	budget := a.cfg.RequestBudget
	// Each controller in the rotation (the current one plus every
	// advertised replica) gets one budget's worth of attempts; after that
	// the query is abandoned and queued packets are dropped.
	if attempt >= budget*(1+len(a.ctrlList)) {
		delete(a.requestOpen, dst)
		delete(a.requestCtrl, dst)
		delete(a.reqStart, dst)
		a.stats.NoRouteDrops += uint64(len(a.pending[dst]))
		delete(a.pending, dst)
		a.stats.QueriesAbandoned++
		a.flushPendingRoutes(dst, false)
		return
	}
	if attempt > 0 && attempt%budget == 0 && a.requestCtrl[dst] == a.ctrl {
		// This query exhausted its budget against the current controller
		// and nobody else has rotated yet: fail over to the next replica.
		a.failoverController()
	}
	a.requestCtrl[dst] = a.ctrl
	seq := a.nextSeq()
	body, err := packet.EncodeControl(packet.MsgPathRequest, &packet.PathRequest{
		Src: a.mac, Dst: dst, Seq: seq,
	})
	if err != nil {
		return
	}
	a.stats.PathQueries++
	op := trace.CtrlPathRequest
	if attempt > 0 {
		a.stats.QueryRetries++
		op = trace.CtrlPathRetry
	}
	a.eng.Tracer().Ctrl(int64(a.eng.Now()), op, a.mac, dst, seq)
	_ = a.SendFrame(a.ctrl, a.ctrlPath, packet.EtherTypeControl, body)
	a.eng.After(a.retryDelay(attempt), func() {
		if a.requestOpen[dst] {
			a.sendPathRequest(dst, attempt+1)
		}
	})
}

// handlePathResponse integrates a controller-issued path graph.
func (a *Agent) handlePathResponse(blob *packet.Blob) {
	pg, err := topo.UnmarshalPathGraph(blob.Body)
	if err != nil {
		a.stats.BadFrames++
		return
	}
	a.stats.PathResponses++
	a.eng.Tracer().Ctrl(int64(a.eng.Now()), trace.CtrlPathResponse, a.mac, pg.Dst, blob.Seq)
	a.cache.Merge(pg.Graph)
	dst := pg.Dst
	delete(a.requestOpen, dst)
	delete(a.requestCtrl, dst)
	if t0, ok := a.reqStart[dst]; ok {
		// Query-to-answer latency as the host saw it: cache-hit answers
		// shorten this directly, warm-up makes it near-constant.
		a.reqLat.Observe(int64(a.eng.Now() - t0))
		delete(a.reqStart, dst)
	}

	entry := &TableEntry{}
	if paths, err := routesFromView(a.cache, a.mac, dst, a.cfg.KPaths); err == nil {
		entry.Paths = a.filterSuspects(paths)
	}
	if len(pg.Backup) > 0 {
		if bp, err := cachedPathFor(a.cache, pg.Backup, dst); err == nil {
			entry.Backup = &bp
		}
	}
	if len(entry.Paths) == 0 {
		// Fall back to the primary path as delivered.
		if pp, err := cachedPathFor(a.cache, pg.Primary, dst); err == nil {
			entry.Paths = append(entry.Paths, pp)
		}
	}
	if len(entry.Paths) == 0 {
		// Nothing usable arrived and the query is closed: reservations
		// would otherwise wait forever (a later Send re-opens the query).
		a.flushPendingRoutes(dst, false)
		return
	}
	a.table.Install(dst, entry)
	a.eng.Tracer().Ctrl(int64(a.eng.Now()), trace.CtrlRouteInstall, a.mac, dst, blob.Seq)
	// Flush pending packets and bulk route reservations.
	queued := a.pending[dst]
	delete(a.pending, dst)
	for _, p := range queued {
		_ = a.Send(dst, p.innerType, p.payload, p.flow)
	}
	a.flushPendingRoutes(dst, true)
}

// RoutesReady reports whether the PathTable can serve dst right now.
func (a *Agent) RoutesReady(dst packet.MAC) bool {
	return a.table.Lookup(dst) != nil
}

// WarmUp proactively requests a path graph for dst without sending data.
func (a *Agent) WarmUp(dst packet.MAC) error {
	if a.RoutesReady(dst) {
		return nil
	}
	if a.ctrl.IsZero() {
		return ErrNoController
	}
	a.requestPath(dst)
	return nil
}

// engNow is a tiny helper for tests.
func (a *Agent) engNow() sim.Time { return a.eng.Now() }
