package host_test

import (
	"testing"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/testnet"
	"dumbnet/internal/topo"
)

// End-to-end tests of the ECN extension: marking at congested switch
// ports, receiver echoes, and congestion-aware rerouting.

// deployECN builds a two-spine fabric with ECN marking enabled and one
// deliberately slow spine so its queues build up.
func deployECN(t *testing.T) *testnet.Net {
	t.Helper()
	tp, err := topo.LeafSpine(2, 2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := testnet.DefaultOptions()
	opts.Fabric.Switch.ECNThreshold = 20 * sim.Microsecond
	// Slow fabric links so a burst queues: 100 Mbps, deep queue.
	opts.Fabric.SwitchLink.BandwidthBps = 100e6
	opts.Fabric.SwitchLink.MaxBacklog = 200 * sim.Millisecond
	opts.Host.ProcessDelay = 0 // let bursts hit the queue back-to-back
	n, err := testnet.Build(tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestECNMarkingOnCongestedPort(t *testing.T) {
	n := deployECN(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	_ = n.Agent(src).SendData(dst, []byte("warm"))
	n.Run()
	// Burst enough 1 KB frames to exceed the 20 µs backlog threshold at
	// 100 Mbps (one frame ≈ 80 µs serialization).
	for i := 0; i < 20; i++ {
		_ = n.Agent(src).SendData(dst, make([]byte, 1000))
	}
	n.Run()
	marked := uint64(0)
	for _, id := range n.Topo.SwitchIDs() {
		marked += n.Fab.Switch(id).Stats().ECNMarked
	}
	if marked == 0 {
		t.Fatal("no frames marked despite a saturated port")
	}
	if n.Agent(dst).Stats().CEReceived == 0 {
		t.Fatal("receiver saw no CE marks")
	}
}

func TestECNEchoReachesSender(t *testing.T) {
	n := deployECN(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	var notified []packet.MAC
	n.Agent(src).OnCongestionNotice = func(d packet.MAC) { notified = append(notified, d) }
	// Receiver needs a cached route back to echo; warm both directions.
	_ = n.Agent(src).SendData(dst, []byte("warm"))
	n.Run()
	_ = n.Agent(dst).SendData(src, []byte("warm-back"))
	n.Run()
	for i := 0; i < 20; i++ {
		_ = n.Agent(src).SendData(dst, make([]byte, 1000))
	}
	n.Run()
	if n.Agent(dst).Stats().CongestionEchoes == 0 {
		t.Fatal("receiver sent no echoes")
	}
	if n.Agent(src).Stats().CongestionNotices == 0 || len(notified) == 0 {
		t.Fatal("sender heard no congestion notices")
	}
	if notified[0] != dst {
		t.Fatalf("notice names %v, want %v", notified[0], dst)
	}
}

func TestECNEchoRateLimited(t *testing.T) {
	n := deployECN(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	_ = n.Agent(src).SendData(dst, []byte("warm"))
	n.Run()
	_ = n.Agent(dst).SendData(src, []byte("warm-back"))
	n.Run()
	for i := 0; i < 60; i++ {
		_ = n.Agent(src).SendData(dst, make([]byte, 1000))
	}
	n.Run()
	st := n.Agent(dst).Stats()
	if st.CEReceived == 0 {
		t.Fatal("no CE marks")
	}
	if st.CongestionEchoes >= st.CEReceived {
		t.Fatalf("echoes (%d) not rate-limited below marks (%d)", st.CongestionEchoes, st.CEReceived)
	}
}

func TestECNChooserReroutesOnCongestion(t *testing.T) {
	n := deployECN(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	chooser := host.NewECNChooser(100*sim.Microsecond, nil)
	n.Agent(src).SetPolicy(chooser)
	_ = n.Agent(src).SendData(dst, []byte("warm"))
	n.Run()
	_ = n.Agent(dst).SendData(src, []byte("warm-back"))
	n.Run()

	// Record which spine carries traffic before congestion feedback, then
	// send saturating bursts with drain gaps so echoes come back between
	// rounds.
	before := [2]uint64{n.Fab.Switch(1).Stats().Forwarded, n.Fab.Switch(2).Stats().Forwarded}
	for round := 0; round < 5; round++ {
		for i := 0; i < 15; i++ {
			_ = n.Agent(src).SendData(dst, make([]byte, 1000))
		}
		n.Run()
	}
	if chooser.Epoch(dst) == 0 {
		t.Fatal("chooser never rerouted despite congestion notices")
	}
	after := [2]uint64{n.Fab.Switch(1).Stats().Forwarded, n.Fab.Switch(2).Stats().Forwarded}
	used := 0
	for i := range after {
		if after[i] > before[i] {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("traffic never moved to the second spine: before=%v after=%v", before, after)
	}
}

func TestECNChooserUnit(t *testing.T) {
	now := sim.Time(0)
	c := host.NewECNChooser(100*sim.Microsecond, func() sim.Time { return now })
	dst := packet.MACFromUint64(7)
	flow := host.FlowKey{Dst: dst}
	first := c.Choose(0, flow, 4)
	// Same epoch: stable.
	if c.Choose(0, flow, 4) != first {
		t.Fatal("unstable without congestion")
	}
	c.OnCongestion(dst)
	if c.Epoch(dst) != 1 {
		t.Fatalf("epoch = %d", c.Epoch(dst))
	}
	second := c.Choose(0, flow, 4)
	if second == first {
		t.Fatal("epoch bump did not move the path")
	}
	// Cooldown: a second notice right away is ignored.
	c.OnCongestion(dst)
	if c.Epoch(dst) != 1 {
		t.Fatal("cooldown not applied")
	}
	now += 200 * sim.Microsecond
	c.OnCongestion(dst)
	if c.Epoch(dst) != 2 {
		t.Fatal("epoch not bumped after cooldown")
	}
	// Single path: always 0.
	if c.Choose(0, flow, 1) != 0 {
		t.Fatal("single path must be 0")
	}
}

func TestCongestionControlRoundTrip(t *testing.T) {
	in := &packet.Congestion{Reporter: packet.MACFromUint64(5), Seq: 42}
	b, err := packet.EncodeControl(packet.MsgCongestion, in)
	if err != nil {
		t.Fatal(err)
	}
	typ, out, err := packet.DecodeControl(b)
	if err != nil || typ != packet.MsgCongestion {
		t.Fatalf("decode: %v %v", typ, err)
	}
	if got := out.(*packet.Congestion); *got != *in {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestMarkCEHelpers(t *testing.T) {
	f := &packet.Frame{Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2),
		Tags: packet.Path{1}, InnerType: packet.EtherTypeIPv4, Payload: []byte("x")}
	buf, _ := f.Encode()
	if packet.HasCE(buf) {
		t.Fatal("fresh frame marked")
	}
	packet.MarkCE(buf)
	if !packet.HasCE(buf) {
		t.Fatal("mark did not stick")
	}
	// Mark survives a tag pop (constant offset shifts with the header).
	rest, _, err := packet.PopTag(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !packet.HasCE(rest) {
		t.Fatal("mark lost across a hop")
	}
	g, err := packet.Decode(rest)
	if err != nil || g.Flags&packet.FlagCE == 0 {
		t.Fatalf("decoded flags = %x, %v", g.Flags, err)
	}
	// No-ops on non-DumbNet frames.
	raw := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x08, 0x00, 0, 0}
	packet.MarkCE(raw)
	if packet.HasCE(raw) {
		t.Fatal("marked a non-DumbNet frame")
	}
}
