package host

import (
	"encoding/binary"

	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

// This file is the host side of bulk transfers, in both simulation modes.
//
// ResolveRoute is the control-plane half of the hybrid fluid-send path: it
// reserves a source route exactly like a packet send would — path-table
// lookup, controller path request with the full retry/failover budget on a
// miss, MPLS/tag resolution — and hands the chosen route to the caller
// (the hybrid fluid layer) instead of a frame to the wire.
//
// StartTransfer is the packet-level reference implementation: a windowed,
// ack-clocked sender used by the fidelity tests to check hybrid flow
// completion times against real per-frame simulation. It assumes a
// loss-free fabric (no retransmit timer): the fidelity suite runs without
// chaos, and a lost frame stalls the transfer rather than corrupting the
// measurement silently.

// RouteCallback receives a reserved route. ok=false means the route could
// not be resolved (no controller, or the request budget was exhausted).
// A nil hops with ok=true is the loopback case (dst == self).
type RouteCallback func(tags packet.Path, hops []HopRef, ok bool)

// pendingResolve is a route reservation awaiting a controller response.
type pendingResolve struct {
	flow FlowKey
	cb   RouteCallback
}

// ResolveRoute reserves a source route to dst for a bulk transfer: on a
// path-table hit the callback fires synchronously; on a miss the query
// goes to the controller (sharing the retry budget, failover and tracing
// of the packet path) and the callback fires when the route installs or
// the query is abandoned.
func (a *Agent) ResolveRoute(dst packet.MAC, flow FlowKey, cb RouteCallback) {
	a.stats.BulkResolves++
	if dst == a.mac {
		cb(nil, nil, true)
		return
	}
	if tags, hops, ok := a.routeForHops(dst, flow); ok {
		cb(tags, hops, true)
		return
	}
	if a.ctrl.IsZero() {
		cb(nil, nil, false)
		return
	}
	if a.pendingRoute == nil {
		a.pendingRoute = make(map[packet.MAC][]pendingResolve)
	}
	a.pendingRoute[dst] = append(a.pendingRoute[dst], pendingResolve{flow: flow, cb: cb})
	a.requestPath(dst)
}

// flushPendingRoutes resolves queued reservations after a route for dst
// installed (ok) or its query was abandoned (!ok).
func (a *Agent) flushPendingRoutes(dst packet.MAC, ok bool) {
	queued := a.pendingRoute[dst]
	if len(queued) == 0 {
		return
	}
	delete(a.pendingRoute, dst)
	for _, p := range queued {
		if !ok {
			p.cb(nil, nil, false)
			continue
		}
		if tags, hops, hit := a.routeForHops(dst, p.flow); hit {
			p.cb(tags, hops, true)
		} else {
			p.cb(nil, nil, false)
		}
	}
}

// --- Packet-level windowed bulk transfer (fidelity reference) ---

// EtherTypeBulk is the inner payload type of the bulk-transfer protocol.
// It is dispatched inside the agent, before OnData.
const EtherTypeBulk uint16 = 0x88B5

// DefaultBulkMTU is the per-frame payload budget of a bulk transfer,
// matching what the fluid layer assumes when it converts bytes to wire
// bits.
const DefaultBulkMTU = 1500

// DefaultBulkWindow is the sender window in frames. At testbed RTTs a few
// tens of frames saturate a 10G path; the window only exists to keep the
// transfer ack-clocked (and therefore max-min fair against competing
// transfers) instead of dumping every frame into the first queue at once.
const DefaultBulkWindow = 64

// bulkHdrLen is the bulk protocol header inside the frame payload:
// kind(1) id(4) seq(4) total(4).
const bulkHdrLen = 13

const (
	bulkKindData = 0x01
	bulkKindAck  = 0x02
)

// BulkChunks returns the frame payload sizes a transfer of `bytes` payload
// bytes produces: full frames of mtu bytes and one tail frame, never
// smaller than the protocol header. The fluid layer uses the same
// function to convert a byte count into wire bits.
func BulkChunks(bytes int64, mtu int) (full int64, tail int) {
	if mtu < bulkHdrLen {
		mtu = bulkHdrLen
	}
	if bytes <= 0 {
		return 0, bulkHdrLen
	}
	full = bytes / int64(mtu)
	tail = int(bytes % int64(mtu))
	if tail == 0 {
		full--
		tail = mtu
	}
	if tail < bulkHdrLen {
		tail = bulkHdrLen
	}
	return full, tail
}

// bulkTx is one outbound transfer.
type bulkTx struct {
	dst    packet.MAC
	flow   FlowKey
	mtu    int
	window int
	bytes  int64
	total  uint32 // frame count
	next   uint32 // next unsent seq
	acked  uint32
	onDone func(at sim.Time)
}

// bulkRxKey identifies an inbound transfer.
type bulkRxKey struct {
	src packet.MAC
	id  uint32
}

// bulkRx tracks an inbound transfer: seen is a bitmap over frame seqs
// (reroutes can reorder frames).
type bulkRx struct {
	total uint32
	got   uint32
	seen  []uint64
}

// StartTransfer opens a packet-level bulk transfer of `bytes` payload
// bytes to dst and returns its transfer ID. onDone (optional) fires at the
// sender when the final ack arrives; the receiver-side completion is
// observable via OnBulkDone. mtu/window of 0 take the defaults.
func (a *Agent) StartTransfer(dst packet.MAC, bytes int64, flow FlowKey, mtu, window int, onDone func(at sim.Time)) uint32 {
	if mtu <= 0 {
		mtu = DefaultBulkMTU
	}
	if window <= 0 {
		window = DefaultBulkWindow
	}
	full, _ := BulkChunks(bytes, mtu)
	total := uint32(full) + 1
	a.bulkSeq++
	id := a.bulkSeq
	if a.bulkTx == nil {
		a.bulkTx = make(map[uint32]*bulkTx)
	}
	tx := &bulkTx{dst: dst, flow: flow, mtu: mtu, window: window, bytes: bytes, total: total, onDone: onDone}
	a.bulkTx[id] = tx
	a.stats.BulkTransfers++
	a.pumpBulk(id, tx)
	return id
}

// pumpBulk sends data frames until the window is full or the transfer is
// fully sent.
func (a *Agent) pumpBulk(id uint32, tx *bulkTx) {
	for tx.next < tx.total && tx.next-tx.acked < uint32(tx.window) {
		seq := tx.next
		tx.next++
		size := tx.mtu
		if seq == tx.total-1 {
			_, tail := BulkChunks(tx.bytes, tx.mtu)
			size = tail
		}
		payload := make([]byte, size)
		payload[0] = bulkKindData
		binary.BigEndian.PutUint32(payload[1:5], id)
		binary.BigEndian.PutUint32(payload[5:9], seq)
		binary.BigEndian.PutUint32(payload[9:13], tx.total)
		_ = a.Send(tx.dst, EtherTypeBulk, payload, tx.flow)
	}
}

// handleBulk dispatches bulk-protocol frames (called from deliver).
func (a *Agent) handleBulk(src packet.MAC, payload []byte) {
	if len(payload) < bulkHdrLen {
		a.stats.BadFrames++
		return
	}
	id := binary.BigEndian.Uint32(payload[1:5])
	seq := binary.BigEndian.Uint32(payload[5:9])
	switch payload[0] {
	case bulkKindData:
		total := binary.BigEndian.Uint32(payload[9:13])
		if total == 0 {
			a.stats.BadFrames++
			return
		}
		key := bulkRxKey{src: src, id: id}
		if a.bulkRx == nil {
			a.bulkRx = make(map[bulkRxKey]*bulkRx)
		}
		rx := a.bulkRx[key]
		if rx == nil {
			rx = &bulkRx{total: total, seen: make([]uint64, (total+63)/64)}
			a.bulkRx[key] = rx
		}
		if seq < rx.total && rx.seen[seq/64]&(1<<(seq%64)) == 0 {
			rx.seen[seq/64] |= 1 << (seq % 64)
			rx.got++
		}
		done := rx.got == rx.total
		if done {
			delete(a.bulkRx, key)
			if a.OnBulkDone != nil {
				a.OnBulkDone(src, id, a.eng.Now())
			}
		}
		ack := make([]byte, bulkHdrLen)
		ack[0] = bulkKindAck
		binary.BigEndian.PutUint32(ack[1:5], id)
		binary.BigEndian.PutUint32(ack[5:9], seq)
		_ = a.Send(src, EtherTypeBulk, ack, FlowKey{Dst: src, SrcPort: uint16(id), Proto: 0xBB})
	case bulkKindAck:
		tx := a.bulkTx[id]
		if tx == nil {
			return
		}
		tx.acked++
		if tx.acked == tx.total {
			delete(a.bulkTx, id)
			if tx.onDone != nil {
				tx.onDone(a.eng.Now())
			}
			return
		}
		a.pumpBulk(id, tx)
	default:
		a.stats.BadFrames++
	}
}
