package host

import (
	"fmt"
	"sort"
	"sync"

	"dumbnet/internal/sim"
)

// Policy is the unified host routing-policy interface: every way a host can
// pick among its k cached paths — sticky flows, flowlet TE, packet spraying,
// single-path pinning, ECN-driven rerouting — behind one type. A Policy is
// a RouteChooser plus an installation hook: Install runs when the policy is
// attached to an agent and is where a policy captures agent facilities (the
// virtual clock, config defaults). Congestion-reactive policies additionally
// implement CongestionAware; the agent feeds them ECN echoes exactly as
// before.
type Policy interface {
	RouteChooser
	// Install binds the policy to its agent. Called once per attachment by
	// Agent.SetPolicy; a policy attached to two agents is a bug (choosers
	// keep per-flow state).
	Install(a *Agent)
}

// Default knobs for registry-built policies. Policies built directly
// (NewFlowletChooser, NewECNChooser) take explicit parameters instead.
const (
	// DefaultFlowletTimeout is the idle gap that starts a new flowlet for
	// the registry's "flowlet" policy.
	DefaultFlowletTimeout = 500 * sim.Microsecond
	// DefaultECNCooldown bounds per-destination reroute frequency for the
	// registry's "ecn" policy.
	DefaultECNCooldown = sim.Millisecond
)

var (
	policyMu sync.RWMutex
	policies = map[string]func() Policy{}
)

// RegisterPolicy adds (or replaces) a named policy factory. The factory
// must return a fresh instance per call — policies hold per-flow state and
// are never shared between agents.
func RegisterPolicy(name string, factory func() Policy) {
	policyMu.Lock()
	defer policyMu.Unlock()
	policies[name] = factory
}

// NewPolicy builds a fresh instance of a registered policy.
func NewPolicy(name string) (Policy, error) {
	policyMu.RLock()
	factory, ok := policies[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("host: unknown routing policy %q (have %v)", name, PolicyNames())
	}
	return factory(), nil
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policies))
	for n := range policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetPolicy installs a routing policy on the agent.
func (a *Agent) SetPolicy(p Policy) {
	p.Install(a)
	a.Chooser = p
}

// UsePolicy installs a registered policy by name and returns the instance.
func (a *Agent) UsePolicy(name string) (Policy, error) {
	p, err := NewPolicy(name)
	if err != nil {
		return nil, err
	}
	a.SetPolicy(p)
	return p, nil
}

// The five built-in policies.
func init() {
	RegisterPolicy("single", func() Policy { return SinglePathChooser{} })
	RegisterPolicy("sticky", func() Policy { return NewStickyChooser() })
	RegisterPolicy("rr", func() Policy { return NewRoundRobinChooser() })
	RegisterPolicy("flowlet", func() Policy { return NewFlowletChooser(DefaultFlowletTimeout) })
	RegisterPolicy("ecn", func() Policy { return NewECNChooser(DefaultECNCooldown, nil) })
}

// Install implements Policy (no agent facilities needed).
func (c *StickyChooser) Install(*Agent) {}

// Install implements Policy (no agent facilities needed).
func (c *FlowletChooser) Install(*Agent) {}

// Install implements Policy (no agent facilities needed).
func (c *RoundRobinChooser) Install(*Agent) {}

// Install implements Policy (no agent facilities needed).
func (SinglePathChooser) Install(*Agent) {}

// Install implements Policy: the ECN chooser reads the agent's virtual
// clock for its reroute cooldown.
func (c *ECNChooser) Install(a *Agent) { c.clock = a.eng.Now }
