package host

import (
	"fmt"

	"dumbnet/internal/packet"
)

// Host-side multicast (the sender half of source-routed multicast): the
// agent caches one encoded distribution tree per group — fetched from the
// controller by the application layer, the way unicast path graphs are — and
// stamps the whole tree into every multicast frame it sends. Switches fork
// the frame per branch with no group state; the only thing a host must get
// right is cache hygiene, so two eviction signals exist: a MsgGroupEvent
// flood (membership changed at the controller) drops that group's tree, and
// any topology patch drops all of them — a patched fabric may have lost a
// link some tree still crosses.

// ErrNoTree reports a multicast send with no cached tree for the group; the
// caller should fetch one from the controller and retry.
var ErrNoTree = fmt.Errorf("host: no cached multicast tree for group")

// McastTree returns the cached encoded tree for a group, if any. The bytes
// are shared with the cache and must not be modified.
func (a *Agent) McastTree(group uint32) ([]byte, bool) {
	w, ok := a.mcastTrees[group]
	return w, ok
}

// SetMcastTree caches a group's encoded distribution tree (copied).
func (a *Agent) SetMcastTree(group uint32, wire []byte) {
	a.mcastTrees[group] = append([]byte(nil), wire...)
}

// DropMcastTree evicts one group's cached tree.
func (a *Agent) DropMcastTree(group uint32) {
	delete(a.mcastTrees, group)
}

// dropAllMcastTrees evicts every cached tree — the topology-patch response:
// after the fabric changed shape, no cached tree is trustworthy.
func (a *Agent) dropAllMcastTrees() {
	for g := range a.mcastTrees {
		delete(a.mcastTrees, g)
	}
}

// McastTreeCount reports how many trees are cached (tests and audits).
func (a *Agent) McastTreeCount() int { return len(a.mcastTrees) }

// SendMcast transmits a payload to a multicast group using the cached tree.
// ErrNoTree means the application must fetch a tree first.
func (a *Agent) SendMcast(group uint32, innerType uint16, payload []byte) error {
	wire, ok := a.mcastTrees[group]
	if !ok {
		return ErrNoTree
	}
	if a.link == nil {
		return fmt.Errorf("host %v: no uplink", a.mac)
	}
	buf := packet.GetBuffer(packet.EncodedLenMcast(len(wire), len(payload)))
	if _, err := packet.EncodeMcastTo(buf, packet.McastMAC(group), a.mac, 0, wire, innerType, payload); err != nil {
		packet.PutBuffer(buf)
		return err
	}
	a.stats.McastSent++
	a.link.SendFromAfter(a, buf, a.cfg.ProcessDelay+a.cfg.EncapDelay)
	return nil
}

// handleGroupEvent processes a flooded group-membership event: the cached
// tree (if any) is stale, so drop it; the next send re-fetches.
func (a *Agent) handleGroupEvent(ev *packet.GroupEvent) {
	a.stats.GroupEventsIn++
	a.DropMcastTree(ev.Group)
}
