package host

import (
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

// The ECN extension (paper §6.2/§8, named future work): switches mark
// frames that cross congested ports; the receiving host echoes the mark to
// the sender, and a congestion-aware route chooser steers subsequent
// traffic onto another of the k cached paths. Everything below runs on
// hosts — the switch contribution is one stateless flag write.

// CongestionAware is implemented by route choosers that react to ECN
// echoes.
type CongestionAware interface {
	// OnCongestion reports that the path currently used toward dst passed
	// through a congested port.
	OnCongestion(dst packet.MAC)
}

// handleCE processes a congestion-experienced mark on a received frame:
// echo it to the sender, rate-limited per source.
func (a *Agent) handleCE(src packet.MAC) {
	a.stats.CEReceived++
	if src == a.mac || src == packet.BroadcastMAC {
		return
	}
	now := a.eng.Now()
	interval := a.cfg.ECNEchoInterval
	if interval <= 0 {
		interval = 500 * sim.Microsecond
	}
	if last, ok := a.lastEcho[src]; ok && now-last < interval {
		return
	}
	tags, ok := a.routeFor(src, FlowKey{Dst: src})
	if !ok {
		return // no cached route back; the mark is best-effort
	}
	a.lastEcho[src] = now
	body, err := packet.EncodeControl(packet.MsgCongestion, &packet.Congestion{
		Reporter: a.mac,
		Seq:      a.nextSeq(),
	})
	if err != nil {
		return
	}
	a.stats.CongestionEchoes++
	_ = a.SendFrame(src, tags, packet.EtherTypeControl, body)
}

// handleCongestion processes an incoming echo: tell the chooser to move
// traffic toward the reporter onto another path.
func (a *Agent) handleCongestion(m *packet.Congestion) {
	a.stats.CongestionNotices++
	if ca, ok := a.Chooser.(CongestionAware); ok {
		ca.OnCongestion(m.Reporter)
	}
	if a.OnCongestionNotice != nil {
		a.OnCongestionNotice(m.Reporter)
	}
}

// ECNChooser is a congestion-aware route chooser: flows bind to a path as
// with the sticky default, but every congestion notice for a destination
// bumps that destination's epoch, shifting all its flows to the next of the
// k cached paths. Combined with switch marking it implements the
// congestion-avoiding rerouting the paper leaves as future work.
type ECNChooser struct {
	// Cooldown bounds how often one destination's epoch may advance, so a
	// burst of echoes causes one reroute, not k.
	Cooldown sim.Time

	epoch  map[packet.MAC]uint64
	bumped map[packet.MAC]sim.Time
	clock  func() sim.Time
}

// NewECNChooser creates a congestion-aware chooser. The clock is supplied
// by the agent when installed via SetPolicy (or manually for tests).
func NewECNChooser(cooldown sim.Time, clock func() sim.Time) *ECNChooser {
	return &ECNChooser{
		Cooldown: cooldown,
		epoch:    make(map[packet.MAC]uint64),
		bumped:   make(map[packet.MAC]sim.Time),
		clock:    clock,
	}
}

// Choose implements RouteChooser.
func (c *ECNChooser) Choose(now sim.Time, flow FlowKey, nPaths int) int {
	if nPaths <= 1 {
		return 0
	}
	return int((flow.hash() + c.epoch[flow.Dst]) % uint64(nPaths))
}

// OnCongestion implements CongestionAware.
func (c *ECNChooser) OnCongestion(dst packet.MAC) {
	now := sim.Time(0)
	if c.clock != nil {
		now = c.clock()
	}
	if last, ok := c.bumped[dst]; ok && c.Cooldown > 0 && now-last < c.Cooldown {
		return
	}
	c.bumped[dst] = now
	c.epoch[dst]++
}

// Epoch exposes a destination's reroute count (for tests/observability).
func (c *ECNChooser) Epoch(dst packet.MAC) uint64 { return c.epoch[dst] }

// SetEpoch pins a destination's epoch — experiments use it to start a flow
// on a known path index before measuring rerouting behaviour.
func (c *ECNChooser) SetEpoch(dst packet.MAC, e uint64) { c.epoch[dst] = e }
