package host_test

import (
	"fmt"
	"testing"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

// Tests for the recovery-hardening machinery: link-event dedup under
// duplicated / out-of-order / missing events, the bounded dedup set,
// exponential path-request backoff with a retry budget, controller
// failover via the advertised replica list, and blackhole detection.

// soloAgent builds a bare agent with no uplink: control frames are
// injected directly through Receive, the wire-ingress entry point.
func soloAgent(t *testing.T, cfg host.Config) (*sim.Engine, *host.Agent) {
	t.Helper()
	eng := sim.NewEngine(1)
	a := host.New(eng, packet.MACFromUint64(1), cfg)
	a.SetBootstrap(topo.HostAttach{Host: a.MAC(), Switch: 1, Port: 1},
		packet.MACFromUint64(99), packet.Path{1})
	return eng, a
}

// injectControl encodes a control message as a tag-less frame and feeds it
// to the agent as if it had arrived on the uplink.
func injectControl(t *testing.T, eng *sim.Engine, a *host.Agent, mt packet.MsgType, msg any) {
	t.Helper()
	body, err := packet.EncodeControl(mt, msg)
	if err != nil {
		t.Fatal(err)
	}
	f := &packet.Frame{Dst: a.MAC(), Src: packet.MACFromUint64(77),
		InnerType: packet.EtherTypeControl, Payload: body}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	a.Receive(0, buf)
	eng.Run()
}

func TestLinkEventDuplicateOutOfOrderMissing(t *testing.T) {
	cfg := host.DefaultConfig()
	cfg.DisableHostFlood = true
	eng, a := soloAgent(t, cfg)
	ev := func(seq uint64, up bool) *packet.LinkEvent {
		return &packet.LinkEvent{Switch: 3, Port: 2, Seq: seq, Up: up}
	}
	// A fresh event is applied.
	injectControl(t, eng, a, packet.MsgLinkEvent, ev(5, false))
	if st := a.Stats(); st.EventsSeen != 1 || st.EventsDup != 0 {
		t.Fatalf("after first event: %+v", st)
	}
	// An exact duplicate (switch broadcast + host flood both arriving) is
	// suppressed.
	injectControl(t, eng, a, packet.MsgLinkEvent, ev(5, false))
	if st := a.Stats(); st.EventsSeen != 1 || st.EventsDup != 1 {
		t.Fatalf("duplicate not suppressed: %+v", st)
	}
	// An out-of-order older event is still distinct — reordering must not
	// alias onto newer events.
	injectControl(t, eng, a, packet.MsgLinkEvent, ev(3, false))
	if st := a.Stats(); st.EventsSeen != 2 {
		t.Fatalf("out-of-order event dropped: %+v", st)
	}
	// A gap in the sequence (lost intermediate events) does not wedge
	// processing.
	injectControl(t, eng, a, packet.MsgLinkEvent, ev(9, false))
	if st := a.Stats(); st.EventsSeen != 3 {
		t.Fatalf("post-gap event dropped: %+v", st)
	}
	// Direction is part of the identity: up and down with the same seq are
	// different events.
	injectControl(t, eng, a, packet.MsgLinkEvent, ev(9, true))
	if st := a.Stats(); st.EventsSeen != 4 {
		t.Fatalf("up event aliased onto down event: %+v", st)
	}
}

func TestSeenEventsFIFOEviction(t *testing.T) {
	cfg := host.DefaultConfig()
	cfg.DisableHostFlood = true
	cfg.MaxSeenEvents = 4
	eng, a := soloAgent(t, cfg)
	for seq := uint64(1); seq <= 10; seq++ {
		injectControl(t, eng, a, packet.MsgLinkEvent,
			&packet.LinkEvent{Switch: 3, Port: 2, Seq: seq, Up: false})
	}
	st := a.Stats()
	if st.EventsSeen != 10 {
		t.Fatalf("EventsSeen = %d, want 10", st.EventsSeen)
	}
	if st.EventsEvicted != 6 {
		t.Fatalf("EventsEvicted = %d, want 6", st.EventsEvicted)
	}
	// The oldest entries were evicted: replaying seq 1 is treated as new
	// (bounded memory trades perfect dedup for a hard cap).
	injectControl(t, eng, a, packet.MsgLinkEvent,
		&packet.LinkEvent{Switch: 3, Port: 2, Seq: 1, Up: false})
	if got := a.Stats(); got.EventsSeen != 11 || got.EventsDup != st.EventsDup {
		t.Fatalf("evicted event not re-accepted: %+v", got)
	}
	// The newest entry is still deduplicated.
	injectControl(t, eng, a, packet.MsgLinkEvent,
		&packet.LinkEvent{Switch: 3, Port: 2, Seq: 10, Up: false})
	if got := a.Stats(); got.EventsDup != st.EventsDup+1 {
		t.Fatalf("recent event not deduplicated: %+v", got)
	}
}

func TestRequestBackoffExhaustsBudgetAndAbandons(t *testing.T) {
	cfg := host.DefaultConfig()
	eng, a := soloAgent(t, cfg)
	// No uplink: every path request vanishes, so the query must walk the
	// whole backoff schedule and then give up.
	if err := a.SendData(packet.MACFromUint64(42), []byte("x")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := a.Stats()
	if st.PathQueries != uint64(cfg.RequestBudget) {
		t.Fatalf("PathQueries = %d, want %d", st.PathQueries, cfg.RequestBudget)
	}
	if st.QueryRetries != uint64(cfg.RequestBudget-1) {
		t.Fatalf("QueryRetries = %d, want %d", st.QueryRetries, cfg.RequestBudget-1)
	}
	if st.QueriesAbandoned != 1 {
		t.Fatalf("QueriesAbandoned = %d, want 1", st.QueriesAbandoned)
	}
	if st.NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d, want 1 (the queued packet)", st.NoRouteDrops)
	}
	if st.CtrlFailovers != 0 {
		t.Fatalf("failed over with no replica list: %+v", st)
	}
	// Exponential backoff: six attempts at a fixed 5 ms interval would
	// finish in ~30 ms; doubling delays (5,10,20,40,80,80 ms, ±25% jitter)
	// must stretch well past 100 ms.
	if eng.Now() < 100*sim.Millisecond {
		t.Fatalf("abandoned after only %v — retries are not backing off", eng.Now())
	}
}

func TestControllerFailoverRotatesThroughReplicaList(t *testing.T) {
	cfg := host.DefaultConfig()
	eng, a := soloAgent(t, cfg)
	primary := packet.MACFromUint64(99)
	r1, r2 := packet.MACFromUint64(100), packet.MACFromUint64(101)
	injectControl(t, eng, a, packet.MsgCtrlList, &packet.CtrlList{
		Seq: 2,
		Replicas: []packet.CtrlReplica{
			{MAC: primary, Path: packet.Path{1}},
			{MAC: r1, Path: packet.Path{2, 3}},
			{MAC: r2, Path: packet.Path{2, 4}},
		},
	})
	if got := a.CtrlReplicas(); len(got) != 3 {
		t.Fatalf("replica list not installed: %v", got)
	}
	// A stale advertisement (lower Seq) must be ignored.
	injectControl(t, eng, a, packet.MsgCtrlList, &packet.CtrlList{
		Seq:      1,
		Replicas: []packet.CtrlReplica{{MAC: r1, Path: packet.Path{2, 3}}},
	})
	if got := a.CtrlReplicas(); len(got) != 3 {
		t.Fatalf("stale replica list applied: %v", got)
	}
	// With every controller unreachable, the query must spend one budget
	// per replica, rotating each time, before giving up.
	if err := a.SendData(packet.MACFromUint64(42), []byte("x")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := a.Stats()
	// One budget for the bootstrap controller plus one per advertised
	// replica (the primary appears in both roles).
	want := uint64(cfg.RequestBudget * 4)
	if st.PathQueries != want {
		t.Fatalf("PathQueries = %d, want %d (one budget per rotation stop)", st.PathQueries, want)
	}
	if st.CtrlFailovers != 3 {
		t.Fatalf("CtrlFailovers = %d, want 3 (full rotation)", st.CtrlFailovers)
	}
	if st.QueriesAbandoned != 1 {
		t.Fatalf("QueriesAbandoned = %d, want 1", st.QueriesAbandoned)
	}
	// The rotation wrapped back to the primary.
	if ctrl, _, ok := a.Controller(); !ok || ctrl != primary {
		t.Fatalf("controller after full rotation = %v, want %v", ctrl, primary)
	}
}

func TestBlackholeDetectionAndRecovery(t *testing.T) {
	n := deployTestbed(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	delivered := collectData(n.Agent(dst))
	// Warm both directions so the detector arms (it needs return traffic
	// before silence means anything).
	n.Agent(dst).OnData = func(s packet.MAC, it uint16, p []byte) {
		*delivered = append(*delivered, string(p))
		_ = n.Agent(dst).SendData(s, []byte("ack"))
	}
	acked := 0
	n.Agent(src).OnData = func(packet.MAC, uint16, []byte) { acked++ }
	if err := n.Agent(src).SendData(dst, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if acked == 0 {
		t.Fatal("warm-up ack never arrived")
	}
	// Silent loss on every fabric link: frames vanish with no link-down
	// alarm — exactly the failure stage 1 cannot see.
	n.Fab.ImpairAllLinks(sim.Impairment{LossProb: 1})
	for i := 0; i < 12; i++ {
		_ = n.Agent(src).SendData(dst, []byte(fmt.Sprintf("lost-%d", i)))
		n.RunFor(2 * sim.Millisecond)
	}
	if st := n.Agent(src).Stats(); st.Blackholes == 0 {
		t.Fatalf("blackhole never detected: %+v", st)
	}
	// Heal and let the re-query retries land.
	n.Fab.ImpairAllLinks(sim.Impairment{})
	n.RunFor(500 * sim.Millisecond)
	before := len(*delivered)
	if err := n.Agent(src).SendData(dst, []byte("after")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if len(*delivered) <= before {
		t.Fatal("no delivery after blackhole healed")
	}
}

// TestStage1UnderLossyFlappingLinks soaks the stage-1 machinery: a lossy
// fabric plus a flapping spine link generate duplicated, reordered and
// missing link events; dedup must hold and connectivity must survive.
func TestStage1UnderLossyFlappingLinks(t *testing.T) {
	n := deployTestbed(t)
	// Warm a mesh of paths so hosts know each other (enables host floods).
	for _, m := range n.Hosts {
		if m != n.Hosts[0] {
			_ = n.Agent(n.Hosts[0]).SendData(m, []byte("w"))
		}
	}
	n.Run()
	n.Fab.ImpairAllLinks(sim.Impairment{LossProb: 0.05})
	l, err := n.Fab.LinkBetween(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	l.StartFlap(0, 30*sim.Millisecond, 30*sim.Millisecond, 3)
	n.RunFor(300 * sim.Millisecond)
	l.StopFlap()
	l.Restore()
	n.Fab.ImpairAllLinks(sim.Impairment{})
	n.RunFor(2 * sim.Second) // drain the alarm-suppression window

	dups := uint64(0)
	for _, m := range n.Hosts {
		st := n.Agent(m).Stats()
		dups += st.EventsDup
		// Dedup must keep the distinct-event count near the real number of
		// transitions (6 flap transitions, two sides, plus suppression
		// trailing alarms), not the flood volume.
		if st.EventsSeen > 40 {
			t.Fatalf("host %v saw %d distinct events — dedup leak", m, st.EventsSeen)
		}
	}
	if dups == 0 {
		t.Fatal("no duplicate events suppressed — floods not exercised")
	}
	// Full connectivity after the storm.
	got := 0
	for _, m := range n.Hosts {
		m := m
		n.Agent(m).OnData = func(packet.MAC, uint16, []byte) { got++ }
	}
	sent := 0
	for i, a := range n.Hosts {
		b := n.Hosts[(i+1)%len(n.Hosts)]
		if a == b {
			continue
		}
		if err := n.Agent(a).SendData(b, []byte("post")); err != nil {
			t.Fatalf("%v->%v: %v", a, b, err)
		}
		sent++
	}
	n.Run()
	if got != sent {
		t.Fatalf("delivered %d of %d after flap+loss", got, sent)
	}
}
