package host_test

import (
	"testing"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

// fakeHealth flags an explicit set of directed links.
type fakeHealth struct {
	flagged map[[2]uint64]bool
}

func (f *fakeHealth) flag(sw packet.SwitchID, port packet.Tag) {
	if f.flagged == nil {
		f.flagged = make(map[[2]uint64]bool)
	}
	f.flagged[[2]uint64{uint64(sw), uint64(port)}] = true
}

func (f *fakeHealth) LinkFlagged(sw packet.SwitchID, port packet.Tag) bool {
	return f.flagged[[2]uint64{uint64(sw), uint64(port)}]
}

// telemetryAgent builds a bare agent with the "telemetry" policy installed
// and a fake scoreboard wired.
func telemetryAgent(t *testing.T) (*host.Agent, *host.TelemetryChooser, *fakeHealth) {
	t.Helper()
	eng := sim.NewEngine(1)
	a := host.New(eng, packet.MACFromUint64(1), host.Config{})
	p, err := a.UsePolicy("telemetry")
	if err != nil {
		t.Fatal(err)
	}
	tc, ok := p.(*host.TelemetryChooser)
	if !ok {
		t.Fatalf("telemetry policy is a %T", p)
	}
	lh := &fakeHealth{}
	a.SetLinkHealth(lh)
	if a.LinkHealth() != host.LinkHealth(lh) {
		t.Fatal("LinkHealth accessor lost the scoreboard")
	}
	return a, tc, lh
}

// twoPaths is a pair of disjoint two-hop candidate routes.
func twoPaths() []host.CachedPath {
	return []host.CachedPath{
		{Tags: packet.Path{1, 2}, Hops: []host.HopRef{{Switch: 1, Port: 1}, {Switch: 2, Port: 2}}},
		{Tags: packet.Path{3, 2}, Hops: []host.HopRef{{Switch: 1, Port: 3}, {Switch: 3, Port: 2}}},
	}
}

func TestTelemetryPolicyRegistered(t *testing.T) {
	found := false
	for _, name := range host.PolicyNames() {
		if name == "telemetry" {
			found = true
		}
	}
	if !found {
		t.Fatalf("telemetry missing from the policy registry: %v", host.PolicyNames())
	}
}

// With nothing flagged, the chooser is sticky: same flow, same path, and
// ChoosePath agrees with the hash baseline.
func TestTelemetryChooserStickyWhenClean(t *testing.T) {
	_, tc, _ := telemetryAgent(t)
	flow := host.FlowKey{Dst: packet.MACFromUint64(9), SrcPort: 7}
	paths := twoPaths()
	base := tc.Choose(0, flow, len(paths))
	for i := 0; i < 5; i++ {
		if got := tc.ChoosePath(0, flow, paths); got != base {
			t.Fatalf("clean scoreboard moved the flow: %d != %d", got, base)
		}
	}
	if tc.Steered() != 0 {
		t.Fatalf("Steered = %d with a clean scoreboard", tc.Steered())
	}
}

// Flagging a link on the bound path steers the flow to the clean path.
func TestTelemetryChooserSteersOffFlaggedLink(t *testing.T) {
	_, tc, lh := telemetryAgent(t)
	flow := host.FlowKey{Dst: packet.MACFromUint64(9), SrcPort: 7}
	paths := twoPaths()
	base := tc.Choose(0, flow, len(paths))
	bound := paths[base]
	lh.flag(bound.Hops[0].Switch, bound.Hops[0].Port)

	got := tc.ChoosePath(0, flow, paths)
	if got == base {
		t.Fatal("flow not steered off the flagged link")
	}
	for _, hop := range paths[got].Hops {
		if lh.LinkFlagged(hop.Switch, hop.Port) {
			t.Fatal("steered onto a flagged link")
		}
	}
	if tc.Steered() != 1 {
		t.Fatalf("Steered = %d, want 1", tc.Steered())
	}
}

// When every path is flagged, the chooser picks the least-flagged one.
func TestTelemetryChooserMinimizesFlaggedHops(t *testing.T) {
	_, tc, lh := telemetryAgent(t)
	flow := host.FlowKey{Dst: packet.MACFromUint64(9), SrcPort: 7}
	paths := twoPaths()
	// Flag both hops of the base path but only one hop of the other.
	base := tc.Choose(0, flow, len(paths))
	other := (base + 1) % len(paths)
	lh.flag(paths[base].Hops[0].Switch, paths[base].Hops[0].Port)
	lh.flag(paths[base].Hops[1].Switch, paths[base].Hops[1].Port)
	lh.flag(paths[other].Hops[1].Switch, paths[other].Hops[1].Port)
	if got := tc.ChoosePath(0, flow, paths); got != other {
		t.Fatalf("chose path %d (2 flagged hops) over %d (1 flagged hop)", got, other)
	}
}

// A single-path entry is never steered, flags or not.
func TestTelemetryChooserSinglePath(t *testing.T) {
	_, tc, lh := telemetryAgent(t)
	flow := host.FlowKey{Dst: packet.MACFromUint64(9), SrcPort: 7}
	paths := twoPaths()[:1]
	lh.flag(paths[0].Hops[0].Switch, paths[0].Hops[0].Port)
	if got := tc.ChoosePath(0, flow, paths); got != 0 {
		t.Fatalf("single-path choice = %d", got)
	}
}

// Without a wired scoreboard the chooser degrades to the sticky baseline.
func TestTelemetryChooserNoScoreboard(t *testing.T) {
	eng := sim.NewEngine(1)
	a := host.New(eng, packet.MACFromUint64(1), host.Config{})
	p, err := a.UsePolicy("telemetry")
	if err != nil {
		t.Fatal(err)
	}
	tc := p.(*host.TelemetryChooser)
	flow := host.FlowKey{Dst: packet.MACFromUint64(9), SrcPort: 7}
	paths := twoPaths()
	if got, want := tc.ChoosePath(0, flow, paths), tc.Choose(0, flow, len(paths)); got != want {
		t.Fatalf("no-scoreboard ChoosePath = %d, want sticky %d", got, want)
	}
}

// ECN echoes still bump the destination epoch (cooldown-gated), composing
// with the scoreboard signal.
func TestTelemetryChooserECNEpochBump(t *testing.T) {
	_, tc, _ := telemetryAgent(t)
	dst := packet.MACFromUint64(9)
	tc.OnCongestion(dst)
	if tc.Epoch(dst) != 1 {
		t.Fatalf("epoch = %d after first echo, want 1", tc.Epoch(dst))
	}
	// Inside the cooldown: suppressed.
	tc.OnCongestion(dst)
	if tc.Epoch(dst) != 1 {
		t.Fatalf("epoch = %d inside cooldown, want 1", tc.Epoch(dst))
	}
}
