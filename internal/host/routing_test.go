package host_test

import (
	"testing"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

func flowN(i int) host.FlowKey {
	return host.FlowKey{Dst: packet.MACFromUint64(uint64(i)), SrcPort: uint16(i), DstPort: 80, Proto: 6}
}

func TestStickyChooserStability(t *testing.T) {
	c := host.NewStickyChooser()
	f := flowN(1)
	first := c.Choose(0, f, 8)
	for now := sim.Time(0); now < 100; now += 10 {
		if got := c.Choose(now, f, 8); got != first {
			t.Fatalf("sticky choice moved: %d -> %d", first, got)
		}
	}
	c.Rebind(f)
	// After rebind the hash is recomputed (same hash → same index, but the
	// call must not panic and must stay in range).
	if got := c.Choose(0, f, 8); got < 0 || got >= 8 {
		t.Fatalf("out of range: %d", got)
	}
}

func TestStickyChooserSpreadsFlows(t *testing.T) {
	c := host.NewStickyChooser()
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[c.Choose(0, flowN(i), 4)] = true
	}
	if len(used) < 3 {
		t.Fatalf("64 flows landed on only %d of 4 paths", len(used))
	}
}

func TestChoosersSinglePathAlwaysZero(t *testing.T) {
	choosers := []host.RouteChooser{
		host.NewStickyChooser(),
		host.NewFlowletChooser(sim.Millisecond),
		host.NewRoundRobinChooser(),
		host.SinglePathChooser{},
	}
	for _, c := range choosers {
		if got := c.Choose(0, flowN(1), 1); got != 0 {
			t.Fatalf("%T chose %d with one path", c, got)
		}
	}
}

func TestFlowletChooserBumpsAfterIdleGap(t *testing.T) {
	c := host.NewFlowletChooser(100 * sim.Microsecond)
	f := flowN(7)
	// Back-to-back packets: same flowlet, same path.
	p1 := c.Choose(0, f, 16)
	p2 := c.Choose(50*sim.Microsecond, f, 16)
	if p1 != p2 {
		t.Fatalf("burst split across paths: %d vs %d", p1, p2)
	}
	if c.FlowletID(f) != 0 {
		t.Fatalf("flowlet id = %d", c.FlowletID(f))
	}
	// A gap beyond the timeout starts a new flowlet.
	c.Choose(300*sim.Microsecond, f, 16)
	if c.FlowletID(f) != 1 {
		t.Fatalf("flowlet id after gap = %d", c.FlowletID(f))
	}
}

func TestFlowletChooserEventuallyUsesManyPaths(t *testing.T) {
	c := host.NewFlowletChooser(10 * sim.Microsecond)
	f := flowN(3)
	used := map[int]bool{}
	now := sim.Time(0)
	for i := 0; i < 64; i++ {
		used[c.Choose(now, f, 4)] = true
		now += 50 * sim.Microsecond // every packet starts a new flowlet
	}
	if len(used) < 3 {
		t.Fatalf("flowlets used only %d of 4 paths", len(used))
	}
}

func TestFlowletUnknownFlowID(t *testing.T) {
	c := host.NewFlowletChooser(sim.Millisecond)
	if c.FlowletID(flowN(42)) != 0 {
		t.Fatal("unknown flow should report id 0")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	c := host.NewRoundRobinChooser()
	f := flowN(1)
	seen := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		seen = append(seen, c.Choose(0, f, 3))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("sequence = %v", seen)
		}
	}
}

func TestSinglePathChooser(t *testing.T) {
	c := host.SinglePathChooser{}
	for i := 0; i < 5; i++ {
		if c.Choose(sim.Time(i), flowN(i), 7) != 0 {
			t.Fatal("single path must always pick 0")
		}
	}
}
