// Package host implements the DumbNet host agent (paper §5.2): the
// kernel-module-style datapath that encapsulates outgoing packets with
// routing tags and validates incoming ones, the two-level path cache
// (TopoCache + PathTable), stage-1 failure handling with host-based
// flooding, the topology-discovery responder, and the extension hooks
// (custom routing functions, flowlet-based traffic engineering, path
// verification) from §6.
package host

import (
	"errors"
	"fmt"
	"sync"

	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
	"dumbnet/internal/trace"
)

// Config tunes the agent.
type Config struct {
	// KPaths is how many shortest paths the PathTable caches per
	// destination (paper: "TopoCache computes k shortest paths and
	// PathTable caches them all").
	KPaths int
	// ProcessDelay models the per-packet software datapath cost (the
	// DPDK/KNI overhead measured in Fig 9/10); charged on send and on
	// receive.
	ProcessDelay sim.Time
	// EncapDelay is the extra header-manipulation cost of inserting the
	// tag stack (the "+MPLS header copy" overhead of Fig 9).
	EncapDelay sim.Time
	// RequestTimeout is the base controller path-request retry interval;
	// retries back off exponentially from it (with jitter) up to
	// RequestBackoffMax.
	RequestTimeout sim.Time
	// RequestBackoffMax caps the exponential retry backoff; 0 means 80 ms.
	RequestBackoffMax sim.Time
	// RequestBudget is how many attempts a path query gets per controller
	// before failing over to the next advertised replica (and, once every
	// replica's budget is spent, abandoning the query); 0 means 6.
	RequestBudget int
	// MaxSeenEvents caps the link-event dedup map with FIFO eviction;
	// 0 means 4096, negative means unbounded.
	MaxSeenEvents int
	// BlackholeThreshold is how many consecutive sends to a destination
	// with no return traffic trigger blackhole handling (invalidate the
	// path, mark its hops suspect, re-query). 0 means 8, negative
	// disables detection.
	BlackholeThreshold int
	// BlackholeWindow is how long the return-traffic silence must last
	// before the send counter can trigger; 0 means 10 ms.
	BlackholeWindow sim.Time
	// SuspectTTL is how long blackhole-suspected hops are avoided when
	// synthesizing paths from the TopoCache; 0 means 1 s.
	SuspectTTL sim.Time
	// MaxPending bounds packets queued per destination while a path
	// request is outstanding.
	MaxPending int
	// VerifyPaths runs the path verifier on every application-installed
	// route (§6.1). Routes from the agent's own cache are trusted.
	VerifyPaths bool
	// UseMPLS selects the commodity-switch encoding (§5.3): routing tags
	// travel as an MPLS label stack instead of the native one-byte tags.
	UseMPLS bool
	// ECNEchoInterval rate-limits congestion echoes per source (the ECN
	// extension); 0 means the 500 µs default.
	ECNEchoInterval sim.Time
	// DisableHostFlood turns off stage-1 peer-to-peer flooding, leaving
	// only the switches' hop-limited broadcast — used by the hop-limit
	// ablation to measure how far the hardware flood alone reaches.
	DisableHostFlood bool
}

// DefaultConfig mirrors the prototype's behaviour.
func DefaultConfig() Config {
	return Config{
		KPaths:             4,
		ProcessDelay:       2 * sim.Microsecond,
		EncapDelay:         80 * sim.Nanosecond,
		RequestTimeout:     5 * sim.Millisecond,
		RequestBackoffMax:  80 * sim.Millisecond,
		RequestBudget:      6,
		MaxPending:         128,
		MaxSeenEvents:      4096,
		BlackholeThreshold: 8,
		BlackholeWindow:    10 * sim.Millisecond,
		SuspectTTL:         sim.Second,
	}
}

// Stats counts agent activity.
type Stats struct {
	Sent          uint64 // data frames transmitted
	Received      uint64 // data frames delivered to the application
	CtrlReceived  uint64 // control messages processed
	PathQueries   uint64 // MsgPathRequest sent to the controller
	PathResponses uint64 // MsgPathResponse integrated
	QueryRetries  uint64
	PendingDrops  uint64 // packets dropped because the pending queue filled
	NoRouteDrops  uint64 // packets dropped with no route and no controller
	BadFrames     uint64 // undecodable or mid-path frames received
	EventsSeen    uint64 // distinct link events learned
	EventsDup     uint64 // duplicate link events suppressed
	FloodsSent    uint64 // host-flood transmissions
	PatchesAppled uint64 // topology patches applied
	FailoverHits  uint64 // sends that used a repaired/backup path after invalidation
	VerifyFails   uint64 // application routes rejected by the verifier

	EventsEvicted    uint64 // dedup entries dropped by FIFO eviction
	CtrlFailovers    uint64 // switches to a backup controller replica
	QueriesAbandoned uint64 // path queries given up after the full retry budget
	Blackholes       uint64 // paths invalidated by blackhole detection

	CEReceived        uint64 // frames that arrived with the CE mark
	CongestionEchoes  uint64 // echoes sent back to marking senders
	CongestionNotices uint64 // echoes received about our own traffic

	McastSent     uint64 // multicast frames transmitted
	McastReceived uint64 // multicast frames delivered to the application
	GroupEventsIn uint64 // group-membership events processed

	BulkResolves  uint64 // fluid-send route reservations (hybrid mode)
	BulkTransfers uint64 // packet-level bulk transfers opened
}

// Errors.
var (
	ErrNoController = errors.New("host: controller location unknown")
	ErrNoRoute      = errors.New("host: no route to destination")
	ErrPending      = errors.New("host: path request pending")
	ErrVerifyFailed = errors.New("host: route failed verification")
)

// FlowKey identifies a transport flow for path binding.
type FlowKey struct {
	Dst              packet.MAC
	SrcPort, DstPort uint16
	Proto            uint8
}

// hash mixes the flow key into a uint64 (FNV-1a with a splitmix-style
// finalizer; raw FNV low bits correlate badly under small moduli).
func (k FlowKey) hash() uint64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	for _, b := range k.Dst {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// pendingPacket is a queued send awaiting a path.
type pendingPacket struct {
	innerType uint16
	payload   []byte
	flow      FlowKey
}

// Agent is one DumbNet host.
type Agent struct {
	eng  *sim.Engine
	mac  packet.MAC
	cfg  Config
	link *sim.Link

	cache  *topo.Subgraph // TopoCache: aggregated path graphs
	table  *PathTable
	attach topo.HostAttach // own attachment (learned from hello)

	ctrl     packet.MAC  // controller identity
	ctrlPath packet.Path // tags to reach the controller
	seq      uint64

	// Controller replica set for failover, as advertised via MsgCtrlList.
	ctrlList    []packet.CtrlReplica
	ctrlListSeq uint64
	ctrlIdx     int // index of ctrl within ctrlList, -1 if not from the list

	pending      map[packet.MAC][]pendingPacket
	requestOpen  map[packet.MAC]bool
	requestCtrl  map[packet.MAC]packet.MAC // which controller each open query targets
	reqStart     map[packet.MAC]sim.Time   // open path queries -> first-send time
	reqLat       *trace.Histogram          // query-to-route-install latency (sim ns)
	seenEvents   map[eventKey]bool
	eventOrder   []eventKey // FIFO eviction order for seenEvents
	eventHead    int
	patchVersion uint64
	lastEcho     map[packet.MAC]sim.Time
	bh           map[packet.MAC]*bhState // blackhole detector state per destination
	suspect      map[HopRef]sim.Time     // blackhole-suspected hops → expiry
	mcastTrees   map[uint32][]byte       // group -> cached encoded tree

	// Bulk-transfer state (lazily allocated; see bulk.go).
	pendingRoute map[packet.MAC][]pendingResolve
	bulkTx       map[uint32]*bulkTx
	bulkRx       map[bulkRxKey]*bulkRx
	bulkSeq      uint32

	// OnData delivers application payloads (src, innerType, payload).
	OnData func(src packet.MAC, innerType uint16, payload []byte)
	// OnControl, when set, sees every control message before the agent's
	// own handling; returning true consumes it. The controller embeds an
	// agent and uses this hook.
	OnControl func(t packet.MsgType, msg any, from packet.MAC) bool
	// OnLinkEvent is notified after a new (deduplicated) link event is
	// applied to the cache — used by experiments to timestamp stage-1
	// notification arrival.
	OnLinkEvent func(ev *packet.LinkEvent)
	// OnPatch is notified after a topology patch is applied.
	OnPatch func(p *topo.Patch)
	// OnCongestionNotice fires when an ECN echo about our traffic arrives.
	OnCongestionNotice func(dst packet.MAC)
	// OnBulkDone fires at the receiver when a packet-level bulk transfer
	// completes (last data frame arrived).
	OnBulkDone func(src packet.MAC, id uint32, at sim.Time)
	// Chooser selects among cached paths per flow; defaults to sticky
	// per-flow binding. Replace with NewFlowletChooser for flowlet TE.
	Chooser RouteChooser

	// linkHealth, when set, lets path-aware choosers (the "telemetry"
	// policy) consult the telemetry scoreboard of this agent's shard.
	linkHealth LinkHealth

	stats Stats
}

type eventKey struct {
	sw   packet.SwitchID
	port packet.Tag
	seq  uint64
	up   bool
}

// bhState tracks return-traffic liveness per destination for blackhole
// detection. The detector only arms once the destination has been heard
// from at least once (one-way traffic is not evidence of a dead path).
type bhState struct {
	sends    int         // consecutive sends since the last frame from dst
	lastRx   sim.Time    // virtual time we last heard from dst (0 = never)
	lastHops []HopRef    // hops of the most recently used path
	lastTags packet.Path // tags of the most recently used path
}

// New creates an agent for the host with the given MAC.
func New(eng *sim.Engine, mac packet.MAC, cfg Config) *Agent {
	if cfg.KPaths <= 0 {
		cfg.KPaths = 4
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 128
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * sim.Millisecond
	}
	if cfg.RequestBackoffMax <= 0 {
		cfg.RequestBackoffMax = 80 * sim.Millisecond
	}
	if cfg.RequestBackoffMax < cfg.RequestTimeout {
		cfg.RequestBackoffMax = cfg.RequestTimeout
	}
	if cfg.RequestBudget <= 0 {
		cfg.RequestBudget = 6
	}
	if cfg.MaxSeenEvents == 0 {
		cfg.MaxSeenEvents = 4096
	}
	if cfg.BlackholeThreshold == 0 {
		cfg.BlackholeThreshold = 8
	}
	if cfg.BlackholeWindow <= 0 {
		cfg.BlackholeWindow = 10 * sim.Millisecond
	}
	if cfg.SuspectTTL <= 0 {
		cfg.SuspectTTL = sim.Second
	}
	a := &Agent{
		eng:         eng,
		mac:         mac,
		cfg:         cfg,
		cache:       topo.NewSubgraph(),
		ctrlIdx:     -1,
		pending:     make(map[packet.MAC][]pendingPacket),
		requestOpen: make(map[packet.MAC]bool),
		requestCtrl: make(map[packet.MAC]packet.MAC),
		reqStart:    make(map[packet.MAC]sim.Time),
		reqLat:      eng.Metrics().Histogram("host.pathreq.latency"),
		seenEvents:  make(map[eventKey]bool),
		lastEcho:    make(map[packet.MAC]sim.Time),
		bh:          make(map[packet.MAC]*bhState),
		suspect:     make(map[HopRef]sim.Time),
		mcastTrees:  make(map[uint32][]byte),
	}
	a.table = NewPathTable(cfg.KPaths)
	a.Chooser = NewStickyChooser()
	return a
}

// MAC returns the host's address.
func (a *Agent) MAC() packet.MAC { return a.mac }

// Engine returns the engine this agent runs on — in a sharded deployment,
// the shard that owns the host's attachment switch. All timing observed at
// this host (ping RTTs, timeouts) must be read from this engine's clock.
func (a *Agent) Engine() *sim.Engine { return a.eng }

// Stats returns a copy of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// Cache exposes the TopoCache (read/extend by extensions, §6.1: "TopoCache
// offers an interface to reveal partial or entire network topology").
func (a *Agent) Cache() *topo.Subgraph { return a.cache }

// Table exposes the PathTable.
func (a *Agent) Table() *PathTable { return a.table }

// RequestBudget reports the current per-controller path-query retry budget.
func (a *Agent) RequestBudget() int { return a.cfg.RequestBudget }

// SetRequestBudget overrides the per-controller path-query retry budget at
// runtime — tenant degradation classes throttle how hard a slice's hosts
// may hammer the controller. n <= 0 restores the default.
func (a *Agent) SetRequestBudget(n int) {
	if n <= 0 {
		n = 6
	}
	a.cfg.RequestBudget = n
}

// Attach returns the host's own attachment point (zero until bootstrapped).
func (a *Agent) Attach() topo.HostAttach { return a.attach }

// Controller returns the known controller identity and path.
func (a *Agent) Controller() (packet.MAC, packet.Path, bool) {
	return a.ctrl, a.ctrlPath, !a.ctrl.IsZero()
}

// SetUplink wires the agent to its access link (fabric.AttachHost result).
func (a *Agent) SetUplink(l *sim.Link) { a.link = l }

// SetBootstrap installs the bootstrap info directly (used by tests and by
// deployments with static configuration instead of a hello patch).
func (a *Agent) SetBootstrap(attach topo.HostAttach, ctrl packet.MAC, ctrlPath packet.Path) {
	a.attach = attach
	a.ctrl = ctrl
	a.ctrlPath = ctrlPath.Clone()
	a.cache.AddHost(attach)
}

// nextSeq returns a fresh sequence number.
func (a *Agent) nextSeq() uint64 {
	a.seq++
	return a.seq
}

// deliverEvent defers one parsed frame through the datapath processing
// delay. Pooled, so the per-frame receive path allocates nothing beyond
// what the frame itself requires. buf is the raw receive buffer, recycled
// after control frames (whose payloads DecodeControl copies out in full);
// data frame buffers stay alive because OnData may retain the payload.
type deliverEvent struct {
	a   *Agent
	f   packet.Frame
	buf []byte
}

var deliverPool = sync.Pool{New: func() any { return new(deliverEvent) }}

func (d *deliverEvent) RunEvent() {
	d.a.deliver(&d.f)
	if d.buf != nil && d.f.InnerType == packet.EtherTypeControl {
		packet.PutBuffer(d.buf)
	}
	*d = deliverEvent{}
	deliverPool.Put(d)
}

// SendFrame transmits a raw DumbNet frame with explicit tags after the
// datapath processing delay. Exported for the controller and extensions.
func (a *Agent) SendFrame(dst packet.MAC, tags packet.Path, innerType uint16, payload []byte) error {
	if dst == a.mac && len(tags) == 0 {
		// Self-addressed control (e.g. the controller's own agent talking
		// to the controller process): loop back locally.
		d := deliverPool.Get().(*deliverEvent)
		d.a = a
		d.f = packet.Frame{Dst: dst, Src: a.mac, InnerType: innerType, Payload: payload}
		a.eng.AfterEvent(a.cfg.ProcessDelay, d)
		return nil
	}
	if a.link == nil {
		return fmt.Errorf("host %v: no uplink", a.mac)
	}
	f := packet.Frame{Dst: dst, Src: a.mac, Tags: tags, InnerType: innerType, Payload: payload}
	var buf []byte
	var err error
	if a.cfg.UseMPLS {
		buf = packet.GetBuffer(packet.EncodedLenMPLS(len(tags), len(payload)))
		_, err = f.EncodeMPLSTo(buf)
	} else {
		buf = packet.GetBuffer(packet.EncodedLen(len(tags), len(payload)))
		_, err = f.EncodeTo(buf)
	}
	if err != nil {
		packet.PutBuffer(buf)
		return err
	}
	a.link.SendFromAfter(a, buf, a.cfg.ProcessDelay+a.cfg.EncapDelay)
	return nil
}

// SendData sends an application payload to dst with the default flow key.
func (a *Agent) SendData(dst packet.MAC, payload []byte) error {
	return a.Send(dst, packet.EtherTypeIPv4, payload, FlowKey{Dst: dst})
}

// Send routes a payload to dst, querying the controller on a path miss and
// queueing the packet until the path graph arrives.
func (a *Agent) Send(dst packet.MAC, innerType uint16, payload []byte, flow FlowKey) error {
	if dst == a.mac {
		if a.OnData != nil {
			a.OnData(a.mac, innerType, payload)
		}
		return nil
	}
	tags, hops, ok := a.routeForHops(dst, flow)
	if ok {
		a.noteSend(dst, tags, hops)
		a.stats.Sent++
		return a.SendFrame(dst, tags, innerType, payload)
	}
	// Path miss: queue and query the controller.
	if a.ctrl.IsZero() {
		a.stats.NoRouteDrops++
		return ErrNoController
	}
	if len(a.pending[dst]) >= a.cfg.MaxPending {
		a.stats.PendingDrops++
		return ErrPending
	}
	a.pending[dst] = append(a.pending[dst], pendingPacket{innerType: innerType, payload: payload, flow: flow})
	a.requestPath(dst)
	return nil
}

// routeFor returns header tags for dst, or false on a cache miss.
func (a *Agent) routeFor(dst packet.MAC, flow FlowKey) (packet.Path, bool) {
	tags, _, ok := a.routeForHops(dst, flow)
	return tags, ok
}

// routeForHops is routeFor plus the chosen path's hop references, which the
// blackhole detector records so it can mark the right links suspect.
func (a *Agent) routeForHops(dst packet.MAC, flow FlowKey) (packet.Path, []HopRef, bool) {
	entry := a.table.Lookup(dst)
	if entry == nil {
		// Try to synthesize from the TopoCache (the destination may be
		// reachable via previously merged path graphs).
		if !a.fillTableFromCache(dst) {
			return nil, nil, false
		}
		entry = a.table.Lookup(dst)
	}
	var idx int
	if pa, ok := a.Chooser.(PathAwareChooser); ok {
		idx = pa.ChoosePath(a.eng.Now(), flow, entry.Paths)
	} else {
		idx = a.Chooser.Choose(a.eng.Now(), flow, len(entry.Paths))
	}
	if idx < 0 || idx >= len(entry.Paths) {
		idx = 0
	}
	if entry.Rerouted {
		// First packet routed through a recovery-repaired entry: close the
		// recovery timeline.
		entry.Rerouted = false
		a.eng.Tracer().Recovery(int64(a.eng.Now()), trace.RecoveryFirstPacket, 0, 0, false, a.mac, dst)
	}
	return entry.Paths[idx].Tags, entry.Paths[idx].Hops, true
}

// Receive implements sim.Node: the ingress half of the kernel module. Both
// encodings are accepted regardless of the send-side configuration, as on
// a real NIC. The frame is decoded straight into a pooled deliver event:
// no Frame allocation, no closure.
func (a *Agent) Receive(port int, frame []byte) {
	d := deliverPool.Get().(*deliverEvent)
	var err error
	if len(frame) >= packet.EthernetHeaderLen &&
		frame[12] == byte(packet.EtherTypeMPLS>>8) && frame[13] == byte(packet.EtherTypeMPLS&0xFF) {
		err = packet.DecodeMPLSFrom(&d.f, frame)
	} else if len(frame) >= packet.EthernetHeaderLen &&
		frame[12] == byte(packet.EtherTypeDumbNetMcast>>8) && frame[13] == byte(packet.EtherTypeDumbNetMcast&0xFF) {
		// A multicast frame reaching a host must have its tree fully
		// consumed (the switch pops one level per fork); DecodeMcastFrom
		// rejects anything mid-tree.
		err = packet.DecodeMcastFrom(&d.f, frame)
	} else {
		err = packet.DecodeFrom(&d.f, frame)
	}
	if err != nil || len(d.f.Tags) != 0 {
		// Undecodable, or path not fully consumed: the kernel module drops
		// it (§5.1).
		*d = deliverEvent{}
		deliverPool.Put(d)
		a.stats.BadFrames++
		return
	}
	d.a = a
	d.buf = frame
	a.eng.AfterEvent(a.cfg.ProcessDelay, d)
}

func (a *Agent) deliver(f *packet.Frame) {
	if f.Flags&packet.FlagCE != 0 {
		a.handleCE(f.Src)
	}
	a.noteRx(f.Src)
	if f.InnerType != packet.EtherTypeControl {
		a.stats.Received++
		if f.Dst[0] == 0x33 && f.Dst[1] == 0x33 {
			a.stats.McastReceived++
		}
		if f.InnerType == EtherTypeBulk {
			a.handleBulk(f.Src, f.Payload)
			return
		}
		if a.OnData != nil {
			a.OnData(f.Src, f.InnerType, f.Payload)
		}
		return
	}
	t, msg, err := packet.DecodeControl(f.Payload)
	if err != nil {
		a.stats.BadFrames++
		return
	}
	a.stats.CtrlReceived++
	if a.OnControl != nil && a.OnControl(t, msg, f.Src) {
		return
	}
	switch t {
	case packet.MsgProbe:
		a.handleProbe(msg.(*packet.Probe))
	case packet.MsgLinkEvent:
		a.handleLinkEvent(msg.(*packet.LinkEvent))
	case packet.MsgHostFlood:
		a.handleHostFlood(msg.(*packet.Blob))
	case packet.MsgPathResponse:
		a.handlePathResponse(msg.(*packet.Blob))
	case packet.MsgTopoPatch:
		a.handleTopoPatch(msg.(*packet.Blob))
	case packet.MsgCongestion:
		a.handleCongestion(msg.(*packet.Congestion))
	case packet.MsgCtrlList:
		a.handleCtrlList(msg.(*packet.CtrlList))
	case packet.MsgGroupEvent:
		a.handleGroupEvent(msg.(*packet.GroupEvent))
	case packet.MsgData:
		blob := msg.(*packet.Blob)
		a.stats.Received++
		if a.OnData != nil {
			a.OnData(f.Src, packet.EtherTypeControl, blob.Body)
		}
	}
}

// handleProbe answers topology-discovery probes (§4.1): reply with our
// identity along the reverse path the prober supplied.
func (a *Agent) handleProbe(p *packet.Probe) {
	if len(p.Return) == 0 {
		return
	}
	body, err := packet.EncodeControl(packet.MsgProbeReply, &packet.ProbeReply{
		Responder: a.mac,
		Seq:       p.Seq,
		Path:      p.Path,
		KnowsCtrl: !a.ctrl.IsZero(),
	})
	if err != nil {
		return
	}
	_ = a.SendFrame(p.Origin, p.Return, packet.EtherTypeControl, body)
}
