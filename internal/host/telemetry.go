package host

import (
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

// The telemetry closed loop, host side. internal/telemetry's per-shard
// consumers publish detector verdicts to a scoreboard; agents on the same
// shard see it through the LinkHealth interface (core wires it via
// SetLinkHealth), and the "telemetry" policy steers flows off flagged
// links. host depends only on this interface — the telemetry package
// depends on host's trace records, not the other way around.

// LinkHealth is the telemetry scoreboard as seen by route choosers.
// Implementations must be safe to call from the agent's engine goroutine
// (telemetry scoreboards are shard-local, so they are).
type LinkHealth interface {
	// LinkFlagged reports whether the directed link (sw out-port) is
	// currently flagged for avoidance.
	LinkFlagged(sw packet.SwitchID, port packet.Tag) bool
}

// SetLinkHealth wires the agent's shard-local telemetry scoreboard.
func (a *Agent) SetLinkHealth(lh LinkHealth) { a.linkHealth = lh }

// LinkHealth returns the wired scoreboard (nil when telemetry is off).
func (a *Agent) LinkHealth() LinkHealth { return a.linkHealth }

// PathAwareChooser is an optional RouteChooser refinement: a chooser that
// wants the candidate paths themselves (to inspect their hops), not just
// how many there are. routeForHops prefers ChoosePath when implemented.
type PathAwareChooser interface {
	RouteChooser
	// ChoosePath returns the index of the path to use. Out-of-range returns
	// fall back to index 0, as with Choose.
	ChoosePath(now sim.Time, flow FlowKey, paths []CachedPath) int
}

// TelemetryChooser is the "telemetry" policy: sticky per-flow path binding
// (hash + per-destination epoch, like ECN) refined by the telemetry
// scoreboard — when the bound path crosses a flagged link, the chooser
// walks the other cached paths and picks the one crossing the fewest
// flagged links (first zero-cost candidate wins). ECN echoes still bump the
// destination epoch, so the policy composes both signals: the scoreboard
// gives fabric-wide windowed verdicts, ECN gives per-RTT marks.
type TelemetryChooser struct {
	// Cooldown bounds per-destination epoch bumps from ECN echoes.
	Cooldown sim.Time

	agent   *Agent
	epoch   map[packet.MAC]uint64
	bumped  map[packet.MAC]sim.Time
	steered uint64 // times the scoreboard moved a flow off its bound path
}

// NewTelemetryChooser creates a scoreboard-aware chooser. The agent (and
// through it the scoreboard and clock) binds at Install time.
func NewTelemetryChooser(cooldown sim.Time) *TelemetryChooser {
	return &TelemetryChooser{
		Cooldown: cooldown,
		epoch:    make(map[packet.MAC]uint64),
		bumped:   make(map[packet.MAC]sim.Time),
	}
}

// Install implements Policy.
func (c *TelemetryChooser) Install(a *Agent) { c.agent = a }

// Choose implements RouteChooser — the sticky baseline used when no path
// detail is available.
func (c *TelemetryChooser) Choose(now sim.Time, flow FlowKey, nPaths int) int {
	if nPaths <= 1 {
		return 0
	}
	return int((flow.hash() + c.epoch[flow.Dst]) % uint64(nPaths))
}

// ChoosePath implements PathAwareChooser: start from the sticky choice and
// move off it only when the scoreboard flags a link it crosses.
func (c *TelemetryChooser) ChoosePath(now sim.Time, flow FlowKey, paths []CachedPath) int {
	base := c.Choose(now, flow, len(paths))
	if len(paths) <= 1 || c.agent == nil || c.agent.linkHealth == nil {
		return base
	}
	lh := c.agent.linkHealth
	best, bestCost := base, pathCost(lh, &paths[base])
	if bestCost == 0 {
		return base
	}
	// Walk the alternatives in sticky order (base+1, base+2, ...) so equal
	// flows land on equal choices deterministically.
	for off := 1; off < len(paths); off++ {
		i := (base + off) % len(paths)
		cost := pathCost(lh, &paths[i])
		if cost < bestCost {
			best, bestCost = i, cost
			if cost == 0 {
				break
			}
		}
	}
	if best != base {
		c.steered++
	}
	return best
}

// pathCost counts flagged links a path crosses.
func pathCost(lh LinkHealth, p *CachedPath) int {
	cost := 0
	for _, hop := range p.Hops {
		if lh.LinkFlagged(hop.Switch, hop.Port) {
			cost++
		}
	}
	return cost
}

// OnCongestion implements CongestionAware (same cooldown-gated epoch bump
// as ECNChooser).
func (c *TelemetryChooser) OnCongestion(dst packet.MAC) {
	now := sim.Time(0)
	if c.agent != nil {
		now = c.agent.eng.Now()
	}
	if last, ok := c.bumped[dst]; ok && c.Cooldown > 0 && now-last < c.Cooldown {
		return
	}
	c.bumped[dst] = now
	c.epoch[dst]++
}

// Steered reports how many sends the scoreboard moved off their sticky
// path (tests and the closed-loop demo read this).
func (c *TelemetryChooser) Steered() uint64 { return c.steered }

// Epoch exposes a destination's ECN reroute count.
func (c *TelemetryChooser) Epoch(dst packet.MAC) uint64 { return c.epoch[dst] }

func init() {
	RegisterPolicy("telemetry", func() Policy { return NewTelemetryChooser(DefaultECNCooldown) })
}
