package host

import (
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/trace"
)

// Recovery hardening beyond the paper's stage-1/stage-2 story: controller
// replica failover (when the primary stops answering path queries the host
// rotates through a bootstrap-advertised replica list) and blackhole
// detection (a cached path whose sends keep vanishing with no link event is
// invalidated, its hops negatively cached, and the route re-queried).

// handleCtrlList installs the controller replica set advertised by the
// controller (MsgCtrlList). Stale advertisements (lower Seq) are ignored.
func (a *Agent) handleCtrlList(m *packet.CtrlList) {
	if m.Seq != 0 && m.Seq <= a.ctrlListSeq {
		return
	}
	a.ctrlListSeq = m.Seq
	a.ctrlList = a.ctrlList[:0]
	a.ctrlIdx = -1
	for _, r := range m.Replicas {
		if r.MAC == a.ctrl {
			a.ctrlIdx = len(a.ctrlList)
		}
		a.ctrlList = append(a.ctrlList, packet.CtrlReplica{MAC: r.MAC, Path: r.Path.Clone()})
	}
}

// CtrlReplicas returns the advertised controller replica set.
func (a *Agent) CtrlReplicas() []packet.CtrlReplica { return a.ctrlList }

// failoverController rotates to the next replica in the advertised list.
func (a *Agent) failoverController() {
	if len(a.ctrlList) == 0 {
		return
	}
	a.ctrlIdx = (a.ctrlIdx + 1) % len(a.ctrlList)
	r := a.ctrlList[a.ctrlIdx]
	a.ctrl = r.MAC
	a.ctrlPath = r.Path.Clone()
	a.stats.CtrlFailovers++
	a.eng.Tracer().Ctrl(int64(a.eng.Now()), trace.CtrlFailover, a.mac, a.ctrl, 0)
}

// retryDelay computes the backoff before retry `attempt+1`: exponential from
// RequestTimeout, capped at RequestBackoffMax, with ±25% jitter drawn from
// the engine's seeded source. The exponent restarts per controller so a
// fresh replica gets fast retries again.
func (a *Agent) retryDelay(attempt int) sim.Time {
	d := a.cfg.RequestTimeout
	for i := 0; i < attempt%a.cfg.RequestBudget; i++ {
		d *= 2
		if d >= a.cfg.RequestBackoffMax {
			break
		}
	}
	if d > a.cfg.RequestBackoffMax {
		d = a.cfg.RequestBackoffMax
	}
	if j := int64(d / 4); j > 0 {
		d += sim.Time(a.eng.Rand().Int63n(2*j+1) - j)
	}
	return d
}

// noteRx records return traffic from src: the path toward src is evidently
// alive, so the blackhole counter resets and the detector (re)arms.
func (a *Agent) noteRx(src packet.MAC) {
	if a.cfg.BlackholeThreshold < 0 {
		return
	}
	s := a.bh[src]
	if s == nil {
		s = &bhState{}
		a.bh[src] = s
	}
	s.sends = 0
	s.lastRx = a.eng.Now()
}

// noteSend counts a data send toward dst and triggers blackhole handling
// once BlackholeThreshold consecutive sends have gone unanswered for longer
// than BlackholeWindow. Only destinations we have heard from at least once
// are eligible — one-way traffic proves nothing about the return of silence.
func (a *Agent) noteSend(dst packet.MAC, tags packet.Path, hops []HopRef) {
	if a.cfg.BlackholeThreshold < 0 {
		return
	}
	s := a.bh[dst]
	if s == nil {
		s = &bhState{}
		a.bh[dst] = s
	}
	s.lastTags = tags
	s.lastHops = hops
	if s.lastRx == 0 {
		return // not armed: never heard from dst
	}
	s.sends++
	if s.sends < a.cfg.BlackholeThreshold || a.eng.Now()-s.lastRx < a.cfg.BlackholeWindow {
		return
	}
	a.onBlackhole(dst, s)
}

// onBlackhole invalidates the suspect path, negatively caches its hops for
// SuspectTTL, tries a local detour from the TopoCache, and re-queries the
// controller in the background.
func (a *Agent) onBlackhole(dst packet.MAC, s *bhState) {
	a.stats.Blackholes++
	a.eng.Tracer().Recovery(int64(a.eng.Now()), trace.RecoveryBlackhole, 0, 0, false, a.mac, dst)
	expiry := a.eng.Now() + a.cfg.SuspectTTL
	for _, h := range s.lastHops {
		a.suspect[h] = expiry
	}
	// Drop the poisoned entry; fillTableFromCache filters suspect hops.
	a.table.Invalidate(dst)
	if a.fillTableFromCache(dst) {
		a.stats.FailoverHits++
	}
	if !a.ctrl.IsZero() {
		a.requestPath(dst)
	}
	// Disarm until dst is heard from again, so one silent destination
	// cannot poison every detour in a cascade.
	s.sends = 0
	s.lastRx = 0
	s.lastHops = nil
	s.lastTags = nil
}

// pathSuspect reports whether a path crosses a currently-suspect hop,
// opportunistically expiring stale suspicion.
func (a *Agent) pathSuspect(cp *CachedPath) bool {
	if len(a.suspect) == 0 {
		return false
	}
	now := a.eng.Now()
	for _, h := range cp.Hops {
		if exp, ok := a.suspect[h]; ok {
			if now < exp {
				return true
			}
			delete(a.suspect, h)
		}
	}
	return false
}

// filterSuspects removes paths crossing suspect hops. If every path would
// be removed the original set is returned unchanged — connectivity beats
// caution when there is no clean alternative.
func (a *Agent) filterSuspects(paths []CachedPath) []CachedPath {
	if len(a.suspect) == 0 || len(paths) == 0 {
		return paths
	}
	clean := make([]CachedPath, 0, len(paths))
	for i := range paths {
		if !a.pathSuspect(&paths[i]) {
			clean = append(clean, paths[i])
		}
	}
	if len(clean) == 0 {
		return paths
	}
	return clean
}
