package host_test

import (
	"errors"
	"fmt"
	"testing"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/testnet"
	"dumbnet/internal/topo"
)

func deployTestbed(t *testing.T) *testnet.Net {
	t.Helper()
	tp, err := topo.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	n, err := testnet.Build(tp, testnet.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// collectData installs a data sink on an agent.
func collectData(a *host.Agent) *[]string {
	var got []string
	a.OnData = func(src packet.MAC, innerType uint16, payload []byte) {
		got = append(got, string(payload))
	}
	return &got
}

func TestBootstrapDeliversHello(t *testing.T) {
	n := deployTestbed(t)
	for _, m := range n.Hosts {
		a := n.Agent(m)
		ctrl, path, ok := a.Controller()
		if !ok {
			t.Fatalf("host %v never learned the controller", m)
		}
		if ctrl != n.Ctrl.MAC() {
			t.Fatalf("host %v thinks controller is %v", m, ctrl)
		}
		if len(path) == 0 {
			t.Fatalf("host %v has empty controller path", m)
		}
		if a.Attach().Host != m {
			t.Fatalf("host %v attach not learned", m)
		}
	}
}

func TestSendWithColdCacheQueriesController(t *testing.T) {
	n := deployTestbed(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	got := collectData(n.Agent(dst))
	if err := n.Agent(src).SendData(dst, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if len(*got) != 1 || (*got)[0] != "hello" {
		t.Fatalf("delivered = %v", *got)
	}
	st := n.Agent(src).Stats()
	if st.PathQueries == 0 || st.PathResponses == 0 {
		t.Fatalf("no controller interaction: %+v", st)
	}
	if !n.Agent(src).RoutesReady(dst) {
		t.Fatal("route not cached after response")
	}
}

func TestSecondSendUsesCache(t *testing.T) {
	n := deployTestbed(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	got := collectData(n.Agent(dst))
	_ = n.Agent(src).SendData(dst, []byte("one"))
	n.Run()
	queries := n.Agent(src).Stats().PathQueries
	_ = n.Agent(src).SendData(dst, []byte("two"))
	n.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered = %v", *got)
	}
	if n.Agent(src).Stats().PathQueries != queries {
		t.Fatal("cached send still queried the controller")
	}
}

func TestAllPairsConnectivity(t *testing.T) {
	n := deployTestbed(t)
	received := make(map[packet.MAC]int)
	for _, m := range n.Hosts {
		m := m
		n.Agent(m).OnData = func(src packet.MAC, it uint16, p []byte) { received[m]++ }
	}
	sent := 0
	for _, a := range n.Hosts {
		for _, b := range n.Hosts {
			if a == b {
				continue
			}
			if err := n.Agent(a).SendData(b, []byte("x")); err != nil {
				t.Fatalf("%v->%v: %v", a, b, err)
			}
			sent++
		}
	}
	n.Run()
	total := 0
	for _, c := range received {
		total += c
	}
	if total != sent {
		t.Fatalf("delivered %d of %d", total, sent)
	}
}

func TestFailoverUsesCachedAlternative(t *testing.T) {
	n := deployTestbed(t)
	// Hosts on different leaves: leaf switches are 3..7, spines 1-2.
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	got := collectData(n.Agent(dst))
	_ = n.Agent(src).SendData(dst, []byte("warm"))
	n.Run()
	queriesBefore := n.Agent(src).Stats().PathQueries

	// Fail one spine's link to the source leaf: the cached k-paths and
	// backup must cover it without a new controller query.
	srcAt, _ := n.Topo.HostAt(src)
	if err := n.Fab.FailLink(1, srcAt.Switch); err != nil {
		t.Fatal(err)
	}
	n.Run() // propagate notifications
	for i := 0; i < 5; i++ {
		if err := n.Agent(src).SendData(dst, []byte(fmt.Sprintf("after-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n.Run()
	if len(*got) != 6 {
		t.Fatalf("delivered %d of 6: %v", len(*got), *got)
	}
	if q := n.Agent(src).Stats().PathQueries; q != queriesBefore {
		t.Fatalf("failover required %d new controller queries", q-queriesBefore)
	}
}

func TestLinkEventDeduplication(t *testing.T) {
	n := deployTestbed(t)
	// Warm some paths so hosts know each other (enables host flooding).
	for _, m := range n.Hosts[:5] {
		_ = n.Agent(n.Hosts[5]).SendData(m, []byte("w"))
	}
	n.Run()
	if err := n.Fab.FailLink(1, 3); err != nil {
		t.Fatal(err)
	}
	n.Run()
	for _, m := range n.Hosts {
		st := n.Agent(m).Stats()
		if st.EventsSeen > 2 { // one per failed-link side at most
			t.Fatalf("host %v saw %d distinct events", m, st.EventsSeen)
		}
	}
}

func TestTopoPatchArrivesAndApplies(t *testing.T) {
	n := deployTestbed(t)
	patched := 0
	for _, m := range n.Hosts {
		n.Agent(m).OnPatch = func(p *topo.Patch) { patched++ }
	}
	if err := n.Fab.FailLink(2, 4); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if patched == 0 {
		t.Fatal("no host received a topology patch")
	}
	if n.Ctrl.Stats().LinkDownsSeen == 0 {
		t.Fatal("controller missed the failure")
	}
	// The master view must have dropped the link.
	if _, err := n.Ctrl.Master().PortToward(2, 4); err == nil {
		t.Fatal("master still has the failed link")
	}
}

func TestLinkRestorePatches(t *testing.T) {
	n := deployTestbed(t)
	if err := n.Fab.FailLink(2, 4); err != nil {
		t.Fatal(err)
	}
	n.Run()
	n.RunFor(2 * sim.Second) // clear alarm suppression window
	if err := n.Fab.RestoreLink(2, 4); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if _, err := n.Ctrl.Master().PortToward(2, 4); err != nil {
		t.Fatalf("master did not restore the link: %v", err)
	}
}

func TestSendToSelf(t *testing.T) {
	n := deployTestbed(t)
	h := n.Hosts[0]
	got := collectData(n.Agent(h))
	if err := n.Agent(h).SendData(h, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0] != "loop" {
		t.Fatalf("self delivery = %v", *got)
	}
}

func TestSendWithoutControllerFails(t *testing.T) {
	eng := sim.NewEngine(1)
	a := host.New(eng, packet.MACFromUint64(99), host.DefaultConfig())
	err := a.Send(packet.MACFromUint64(100), packet.EtherTypeIPv4, []byte("x"), host.FlowKey{})
	if !errors.Is(err, host.ErrNoController) {
		t.Fatalf("err = %v", err)
	}
}

func TestPendingQueueOverflow(t *testing.T) {
	tp, _ := topo.Testbed()
	opts := testnet.DefaultOptions()
	opts.Host.MaxPending = 4
	n, err := testnet.Build(tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Hosts[0], n.Hosts[1]
	// Queue more than MaxPending before running the engine.
	var lastErr error
	for i := 0; i < 10; i++ {
		if err := n.Agent(src).SendData(dst, []byte("x")); err != nil {
			lastErr = err
		}
	}
	if !errors.Is(lastErr, host.ErrPending) {
		t.Fatalf("overflow err = %v", lastErr)
	}
	if n.Agent(src).Stats().PendingDrops == 0 {
		t.Fatal("no pending drops counted")
	}
}

func TestWarmUp(t *testing.T) {
	n := deployTestbed(t)
	src, dst := n.Hosts[0], n.Hosts[2]
	if err := n.Agent(src).WarmUp(dst); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if !n.Agent(src).RoutesReady(dst) {
		t.Fatal("warmup did not install routes")
	}
	// Idempotent when ready.
	if err := n.Agent(src).WarmUp(dst); err != nil {
		t.Fatal(err)
	}
}

func TestInstallRouteVerification(t *testing.T) {
	tp, _ := topo.Testbed()
	opts := testnet.DefaultOptions()
	opts.Host.VerifyPaths = true
	n, err := testnet.Build(tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	// Learn topology first.
	_ = n.Agent(src).SendData(dst, []byte("w"))
	n.Run()
	// A valid route computed from the real topology must pass.
	tags, err := n.Topo.HostPath(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Agent(src).InstallRoute(dst, tags); err != nil {
		t.Fatalf("valid route rejected: %v", err)
	}
	// A garbage route must be rejected.
	if err := n.Agent(src).InstallRoute(dst, packet.Path{9, 9, 9}); !errors.Is(err, host.ErrVerifyFailed) {
		t.Fatalf("bad route err = %v", err)
	}
	if n.Agent(src).Stats().VerifyFails == 0 {
		t.Fatal("verify failure not counted")
	}
}

func TestPathTableDropLink(t *testing.T) {
	pt := host.NewPathTable(4)
	dst := packet.MACFromUint64(5)
	pt.Install(dst, &host.TableEntry{
		Paths: []host.CachedPath{
			{Tags: packet.Path{1, 2}, Hops: []host.HopRef{{Switch: 1, Port: 1}, {Switch: 2, Port: 2}}},
			{Tags: packet.Path{3, 2}, Hops: []host.HopRef{{Switch: 1, Port: 3}, {Switch: 3, Port: 2}}},
		},
		Backup: &host.CachedPath{Tags: packet.Path{4, 2}, Hops: []host.HopRef{{Switch: 1, Port: 4}, {Switch: 4, Port: 2}}},
	})
	dead, rerouted := pt.DropLink(1, 1)
	if rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1", rerouted)
	}
	if len(dead) != 0 {
		t.Fatalf("dead = %v", dead)
	}
	e := pt.Lookup(dst)
	if len(e.Paths) != 1 || e.Paths[0].Tags[0] != 3 {
		t.Fatalf("paths = %+v", e.Paths)
	}
	// Kill the remaining path: backup promotes.
	dead, rerouted = pt.DropLink(1, 3)
	if rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1 (backup promotion is a reroute)", rerouted)
	}
	if len(dead) != 0 {
		t.Fatalf("dead = %v", dead)
	}
	e = pt.Lookup(dst)
	if len(e.Paths) != 1 || e.Paths[0].Tags[0] != 4 || e.Backup != nil {
		t.Fatalf("backup not promoted: %+v", e)
	}
	// Kill the backup too: entry dies.
	dead, rerouted = pt.DropLink(1, 4)
	if rerouted != 0 {
		t.Fatalf("rerouted = %d, want 0 (entry died)", rerouted)
	}
	if len(dead) != 1 || dead[0] != dst {
		t.Fatalf("dead = %v", dead)
	}
	if pt.Lookup(dst) != nil {
		t.Fatal("entry survived")
	}
}

func TestPathTableAccessors(t *testing.T) {
	pt := host.NewPathTable(2)
	if pt.Len() != 0 || len(pt.Destinations()) != 0 {
		t.Fatal("empty table")
	}
	d := packet.MACFromUint64(1)
	pt.Install(d, &host.TableEntry{Paths: []host.CachedPath{{Tags: packet.Path{1}}}})
	if pt.Len() != 1 || pt.Destinations()[0] != d {
		t.Fatal("install/lookup")
	}
	pt.Invalidate(d)
	if pt.Lookup(d) != nil {
		t.Fatal("invalidate")
	}
}

func TestDataPathLatencyCharged(t *testing.T) {
	// ProcessDelay must appear in end-to-end delivery time.
	tp, _ := topo.Line(2, 4)
	run := func(delay sim.Time) sim.Time {
		opts := testnet.DefaultOptions()
		opts.Host.ProcessDelay = delay
		n, err := testnet.Build(tp.Clone(), opts)
		if err != nil {
			t.Fatal(err)
		}
		src := n.Hosts[0]
		dst := n.Ctrl.MAC()
		var at sim.Time = -1
		n.Agents[dst].OnData = func(packet.MAC, uint16, []byte) { at = n.Eng.Now() }
		start := n.Eng.Now()
		_ = n.Agent(src).SendData(dst, []byte("ping"))
		n.Run()
		if at < 0 {
			t.Fatal("not delivered")
		}
		return at - start
	}
	fast := run(0)
	slow := run(200 * sim.Microsecond)
	if slow <= fast {
		t.Fatalf("processing delay not charged: fast=%v slow=%v", fast, slow)
	}
}
