package host

import (
	"dumbnet/internal/packet"
	"dumbnet/internal/topo"
	"dumbnet/internal/trace"
)

// Stage-1 failure handling on the host (paper §4.2): when a link event
// arrives — either the switch's hop-limited hardware broadcast or another
// host's flood — the agent deduplicates it, patches its TopoCache, fails
// over affected PathTable entries, and floods the event on to every host it
// knows, peer-to-peer style. No controller involvement.

// handleLinkEvent processes a switch-originated broadcast.
func (a *Agent) handleLinkEvent(ev *packet.LinkEvent) {
	a.applyLinkEvent(ev, true)
}

// handleHostFlood processes a host-flooded copy.
func (a *Agent) handleHostFlood(blob *packet.Blob) {
	t, msg, err := packet.DecodeControl(blob.Body)
	if err != nil || t != packet.MsgLinkEvent {
		a.stats.BadFrames++
		return
	}
	a.applyLinkEvent(msg.(*packet.LinkEvent), true)
}

// applyLinkEvent is the shared core; flood controls onward propagation.
func (a *Agent) applyLinkEvent(ev *packet.LinkEvent, flood bool) {
	key := eventKey{sw: ev.Switch, port: ev.Port, seq: ev.Seq, up: ev.Up}
	if a.seenEvents[key] {
		a.stats.EventsDup++
		return
	}
	a.seenEvents[key] = true
	a.stats.EventsSeen++
	if a.cfg.MaxSeenEvents > 0 {
		a.eventOrder = append(a.eventOrder, key)
		for len(a.seenEvents) > a.cfg.MaxSeenEvents {
			delete(a.seenEvents, a.eventOrder[a.eventHead])
			a.eventHead++
			a.stats.EventsEvicted++
		}
		// Compact the FIFO slice once the dead prefix dominates, keeping
		// its footprint proportional to the live dedup set.
		if a.eventHead > 64 && a.eventHead > len(a.eventOrder)/2 {
			a.eventOrder = append(a.eventOrder[:0], a.eventOrder[a.eventHead:]...)
			a.eventHead = 0
		}
	}

	a.eng.Tracer().Recovery(int64(a.eng.Now()), trace.RecoveryNotify, ev.Switch, ev.Port, ev.Up, a.mac, packet.MAC{})

	if !ev.Up {
		// Patch the cache and fail over the PathTable immediately; an
		// alternative path is likely already cached (§4.3).
		a.cache.RemoveEdgeByPort(ev.Switch, ev.Port)
		dead, rerouted := a.table.DropLink(ev.Switch, ev.Port)
		for _, dst := range dead {
			// Try detours from the cache; otherwise re-query lazily on
			// the next send.
			if a.fillTableFromCache(dst) {
				a.stats.FailoverHits++
				if e := a.table.Lookup(dst); e != nil {
					e.Rerouted = true
				}
				rerouted++
			}
		}
		if rerouted > 0 {
			// One record per host per event, regardless of how many
			// destinations moved: per-destination records would surface the
			// PathTable's map iteration order and break trace determinism.
			a.eng.Tracer().Recovery(int64(a.eng.Now()), trace.RecoveryReroute, ev.Switch, ev.Port, ev.Up, a.mac, packet.MAC{})
		}
	}
	// Link-up events only matter to the controller, which re-probes and
	// patches the topology (stage 2); hosts just forward the news.

	if a.OnLinkEvent != nil {
		a.OnLinkEvent(ev)
	}
	if flood && !a.cfg.DisableHostFlood {
		a.floodLinkEvent(ev)
	}
}

// floodLinkEvent forwards the event to every host in the TopoCache (the
// peer-to-peer flood of §4.2). Receivers deduplicate, so the flood
// terminates after one round.
func (a *Agent) floodLinkEvent(ev *packet.LinkEvent) {
	inner, err := packet.EncodeControl(packet.MsgLinkEvent, ev)
	if err != nil {
		return
	}
	body, err := packet.EncodeControl(packet.MsgHostFlood, &packet.Blob{Seq: a.nextSeq(), Body: inner})
	if err != nil {
		return
	}
	for _, at := range a.cache.Hosts() {
		if at.Host == a.mac {
			continue
		}
		tags, ok := a.routeFor(at.Host, FlowKey{Dst: at.Host})
		if !ok {
			continue
		}
		a.stats.FloodsSent++
		_ = a.SendFrame(at.Host, tags, packet.EtherTypeControl, body)
	}
	// Always tell the controller directly if we know it and it is not
	// already among the cached hosts.
	if !a.ctrl.IsZero() {
		if _, err := a.cache.HostAt(a.ctrl); err != nil {
			a.stats.FloodsSent++
			_ = a.SendFrame(a.ctrl, a.ctrlPath, packet.EtherTypeControl, body)
		}
	}
}

// handleTopoPatch applies a stage-2 controller patch.
func (a *Agent) handleTopoPatch(blob *packet.Blob) {
	p, err := topo.UnmarshalPatch(blob.Body)
	if err != nil {
		a.stats.BadFrames++
		return
	}
	if p.Version != 0 && p.Version <= a.patchVersion {
		return // stale
	}
	if p.Version != 0 {
		a.patchVersion = p.Version
	}
	// Interpret hello ops addressed to us.
	for _, op := range p.Ops {
		if op.Kind == topo.OpHello && op.Attach.Host == a.mac {
			a.attach = op.Attach
			a.ctrl = op.Ctrl
			a.ctrlPath = op.CtrlPath.Clone()
			a.cache.AddHost(op.Attach)
		}
	}
	p.Apply(a.cache)
	a.stats.PatchesAppled++
	// Cached multicast trees may cross links this patch removed; drop them
	// all and let senders re-fetch against the patched view.
	a.dropAllMcastTrees()
	// Re-validate cached routes: recompute entries whose paths vanished
	// from the cache (a patch may remove links not seen via stage 1).
	for _, dst := range a.table.Destinations() {
		e := a.table.Lookup(dst)
		valid := e.Paths[:0]
		for _, cp := range e.Paths {
			if a.routeStillValid(cp) {
				valid = append(valid, cp)
			}
		}
		e.Paths = valid
		if len(e.Paths) == 0 {
			a.table.Invalidate(dst)
			a.fillTableFromCache(dst)
		}
	}
	if a.OnPatch != nil {
		a.OnPatch(p)
	}
}

// routeStillValid checks a cached path's hops against the current cache.
func (a *Agent) routeStillValid(cp CachedPath) bool {
	if len(cp.Hops) == 0 {
		return true // application-installed route without hop refs
	}
	for i := 0; i+1 < len(cp.Hops); i++ {
		p, err := a.cache.PortToward(cp.Hops[i].Switch, cp.Hops[i+1].Switch)
		if err != nil || p != cp.Hops[i].Port {
			return false
		}
	}
	return true
}
