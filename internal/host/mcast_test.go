package host_test

import (
	"bytes"
	"errors"
	"testing"

	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

func sampleWireTree(t *testing.T) []byte {
	t.Helper()
	wire, err := packet.EncodeTree([]packet.TreeHop{
		{Port: 2},
		{Port: 3, Sub: []packet.TreeHop{{Port: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestMcastTreeCacheLifecycle(t *testing.T) {
	eng, a := soloAgent(t, host.DefaultConfig())
	wire := sampleWireTree(t)

	if _, ok := a.McastTree(9); ok {
		t.Fatal("empty cache reported a tree")
	}
	if err := a.SendMcast(9, packet.EtherTypeIPv4, []byte("x")); !errors.Is(err, host.ErrNoTree) {
		t.Fatalf("send without tree: err = %v, want ErrNoTree", err)
	}
	a.SetMcastTree(9, wire)
	got, ok := a.McastTree(9)
	if !ok || !bytes.Equal(got, wire) {
		t.Fatalf("McastTree = %x, %v", got, ok)
	}
	// The cache must hold a private copy.
	wire[0] ^= 0xFF
	if got, _ := a.McastTree(9); got[0] == wire[0] {
		t.Fatal("cache aliases the caller's bytes")
	}

	// A group event evicts only its group.
	a.SetMcastTree(10, sampleWireTree(t))
	injectControl(t, eng, a, packet.MsgGroupEvent, &packet.GroupEvent{Group: 9, Gen: 2, HopsLeft: 1})
	if _, ok := a.McastTree(9); ok {
		t.Fatal("group event did not evict the tree")
	}
	if _, ok := a.McastTree(10); !ok {
		t.Fatal("group event evicted an unrelated group")
	}
	if a.Stats().GroupEventsIn != 1 {
		t.Fatalf("GroupEventsIn = %d", a.Stats().GroupEventsIn)
	}

	// A topology patch evicts everything.
	a.SetMcastTree(9, sampleWireTree(t))
	patch := &topo.Patch{Version: 100, Ops: []topo.PatchOp{{Kind: topo.OpLinkDown, Switch: 5, Port: 2}}}
	injectControl(t, eng, a, packet.MsgTopoPatch, &packet.Blob{Body: patch.Marshal()})
	if a.McastTreeCount() != 0 {
		t.Fatalf("trees cached after topo patch = %d, want 0", a.McastTreeCount())
	}
}

// frameSink records raw frames a link delivers.
type frameSink struct {
	frames [][]byte
}

func (s *frameSink) Receive(_ int, frame []byte) {
	s.frames = append(s.frames, append([]byte(nil), frame...))
}

// TestSendMcastWireFormat sends through a real uplink and checks the frame
// on the wire: multicast ethertype, group MAC, the cached tree verbatim.
func TestSendMcastWireFormat(t *testing.T) {
	eng := sim.NewEngine(1)
	a := host.New(eng, packet.MACFromUint64(4), host.DefaultConfig())
	sink := &frameSink{}
	l := sim.NewLink(eng, a, 1, sink, 1, sim.LinkConfig{PropDelay: sim.Nanosecond, BandwidthBps: 10e9})
	a.SetUplink(l)

	wire := sampleWireTree(t)
	a.SetMcastTree(3, wire)
	payload := []byte("collective-chunk")
	if err := a.SendMcast(3, packet.EtherTypeIPv4, payload); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(sink.frames) != 1 {
		t.Fatalf("frames on wire = %d, want 1", len(sink.frames))
	}
	frame := sink.frames[0]
	var it packet.McastBranches
	if err := it.Init(frame); err != nil {
		t.Fatalf("frame is not a valid multicast frame: %v", err)
	}
	if want := packet.McastMAC(3); !bytes.Equal(frame[0:6], want[:]) {
		t.Fatalf("dst = %x, want %v", frame[0:6], want)
	}
	if a.Stats().McastSent != 1 {
		t.Fatalf("McastSent = %d", a.Stats().McastSent)
	}
}

// TestReceiveMcastFrame: a tree-consumed multicast frame is delivered to
// OnData like unicast data; a mid-tree frame is dropped as a bad frame.
func TestReceiveMcastFrame(t *testing.T) {
	eng, a := soloAgent(t, host.DefaultConfig())
	var gotSrc packet.MAC
	var gotPayload []byte
	a.OnData = func(src packet.MAC, innerType uint16, payload []byte) {
		gotSrc = src
		gotPayload = append([]byte(nil), payload...)
	}
	payload := []byte("delivered")
	buf := make([]byte, packet.EncodedLenMcast(0, len(payload)))
	if _, err := packet.EncodeMcastTo(buf, packet.McastMAC(8), packet.MACFromUint64(2), 0, nil, packet.EtherTypeIPv4, payload); err != nil {
		t.Fatal(err)
	}
	a.Receive(0, buf)
	eng.Run()
	if !bytes.Equal(gotPayload, payload) || gotSrc != packet.MACFromUint64(2) {
		t.Fatalf("delivered (%v, %q)", gotSrc, gotPayload)
	}
	if s := a.Stats(); s.McastReceived != 1 {
		t.Fatalf("McastReceived = %d", s.McastReceived)
	}

	// Mid-tree frame (unconsumed tree): must be dropped, not delivered.
	wire := sampleWireTree(t)
	mid := make([]byte, packet.EncodedLenMcast(len(wire), len(payload)))
	if _, err := packet.EncodeMcastTo(mid, packet.McastMAC(8), packet.MACFromUint64(2), 0, wire, packet.EtherTypeIPv4, payload); err != nil {
		t.Fatal(err)
	}
	bad := a.Stats().BadFrames
	a.Receive(0, mid)
	eng.Run()
	if s := a.Stats(); s.BadFrames != bad+1 || s.McastReceived != 1 {
		t.Fatalf("mid-tree frame: BadFrames %d->%d, McastReceived %d", bad, s.BadFrames, s.McastReceived)
	}
}
