package host_test

import (
	"testing"

	"dumbnet/internal/packet"
	"dumbnet/internal/testnet"
	"dumbnet/internal/topo"
)

// Full-system test of the MPLS deployment mode (§5.3): hosts encode label
// stacks, switches pop labels, and the whole control plane (path queries,
// patches, failover) runs unchanged on top.

func deployMPLS(t *testing.T) *testnet.Net {
	t.Helper()
	tp, err := topo.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	opts := testnet.DefaultOptions()
	opts.Host.UseMPLS = true
	n, err := testnet.Build(tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMPLSEndToEnd(t *testing.T) {
	n := deployMPLS(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	got := collectData(n.Agent(dst))
	if err := n.Agent(src).SendData(dst, []byte("over mpls")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if len(*got) != 1 || (*got)[0] != "over mpls" {
		t.Fatalf("delivered = %v", *got)
	}
	if n.Agent(src).Stats().PathQueries == 0 {
		t.Fatal("controller query did not happen over MPLS")
	}
}

func TestMPLSFailover(t *testing.T) {
	n := deployMPLS(t)
	src, dst := n.Hosts[0], n.Hosts[len(n.Hosts)-1]
	got := collectData(n.Agent(dst))
	_ = n.Agent(src).SendData(dst, []byte("warm"))
	n.Run()
	srcAt, _ := n.Topo.HostAt(src)
	if err := n.Fab.FailLink(1, srcAt.Switch); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if err := n.Agent(src).SendData(dst, []byte("post-failure")); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d of 2: %v", len(*got), *got)
	}
}

func TestMPLSAndNativeHostsInterop(t *testing.T) {
	// A sender in MPLS mode and a receiver in native mode still talk: the
	// receiving NIC accepts both encodings.
	tp, _ := topo.Testbed()
	opts := testnet.DefaultOptions()
	n, err := testnet.Build(tp, opts) // all native
	if err != nil {
		t.Fatal(err)
	}
	// Flip one sender to MPLS by rebuilding its config... the encoding is
	// per-agent config, so emulate by sending a hand-built MPLS frame.
	src, dst := n.Hosts[0], n.Hosts[1]
	tags, err := n.Topo.HostPath(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collectData(n.Agent(dst))
	body, _ := packet.EncodeControl(packet.MsgData, &packet.Blob{Body: []byte("mixed")})
	f := &packet.Frame{Dst: dst, Src: src, Tags: tags, InnerType: packet.EtherTypeControl, Payload: body}
	buf, _ := f.EncodeMPLS()
	n.Fab.HostLink(src).SendFrom(n.Agent(src), buf)
	n.Run()
	if len(*got) != 1 || (*got)[0] != "mixed" {
		t.Fatalf("delivered = %v", *got)
	}
}
