package stp

import (
	"dumbnet/internal/dswitch"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

// EthernetFabric is a conventional switched-Ethernet deployment of a
// topology: learning switches, spanning tree, and raw host attachment
// points. It is the baseline network for Fig 10 (native Ethernet latency)
// and Fig 11(b) (STP failure recovery).
type EthernetFabric struct {
	Eng      *sim.Engine
	Topo     *topo.Topology
	Switches map[packet.SwitchID]*dswitch.LearningSwitch
	Domain   *Domain
	links    map[[2]packet.SwitchID]*sim.Link
}

// BuildEthernet assembles learning switches and links for t and starts
// spanning tree. Hosts attach afterwards with AttachHost.
func BuildEthernet(eng *sim.Engine, t *topo.Topology, link sim.LinkConfig, fwdDelay sim.Time, cfg Config) (*EthernetFabric, error) {
	f := &EthernetFabric{
		Eng:      eng,
		Topo:     t,
		Switches: make(map[packet.SwitchID]*dswitch.LearningSwitch),
		links:    make(map[[2]packet.SwitchID]*sim.Link),
	}
	for _, id := range t.SwitchIDs() {
		ports, err := t.PortCount(id)
		if err != nil {
			return nil, err
		}
		f.Switches[id] = dswitch.NewLearning(eng, id, ports, fwdDelay)
	}
	for _, id := range t.SwitchIDs() {
		for _, nb := range t.Neighbors(id) {
			if nb.Sw < id {
				continue
			}
			farPort, err := t.PortToward(nb.Sw, id)
			if err != nil {
				return nil, err
			}
			l := sim.NewLink(eng, f.Switches[id], int(nb.Port), f.Switches[nb.Sw], int(farPort), link)
			f.Switches[id].AttachLink(int(nb.Port), l)
			f.Switches[nb.Sw].AttachLink(int(farPort), l)
			f.links[[2]packet.SwitchID{id, nb.Sw}] = l
		}
	}
	f.Domain = NewDomain(eng, f.Switches, cfg)
	return f, nil
}

// AttachHost wires a host node at its topology attachment point.
func (f *EthernetFabric) AttachHost(mac packet.MAC, node sim.Node, link sim.LinkConfig) (*sim.Link, error) {
	at, err := f.Topo.HostAt(mac)
	if err != nil {
		return nil, err
	}
	sw := f.Switches[at.Switch]
	l := sim.NewLink(f.Eng, sw, int(at.Port), node, 1, link)
	sw.AttachLink(int(at.Port), l)
	return l, nil
}

// LinkBetween returns the link connecting two adjacent switches.
func (f *EthernetFabric) LinkBetween(a, b packet.SwitchID) (*sim.Link, error) {
	if a > b {
		a, b = b, a
	}
	if l, ok := f.links[[2]packet.SwitchID{a, b}]; ok {
		return l, nil
	}
	return nil, topo.ErrNoLink
}

// FailLink injects a failure between two adjacent switches.
func (f *EthernetFabric) FailLink(a, b packet.SwitchID) error {
	l, err := f.LinkBetween(a, b)
	if err != nil {
		return err
	}
	l.Fail()
	return nil
}
