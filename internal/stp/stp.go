// Package stp implements a rapid-spanning-tree protocol instance over
// learning switches — the off-the-shelf Ethernet baseline DumbNet's failure
// recovery is compared against in Fig 11(b).
//
// The protocol follows the 802.1D/802.1w structure: bridges exchange BPDUs
// carrying (root, cost, bridge, port) priority vectors; each bridge selects
// a root port (best vector heard), marks ports where its own vector wins as
// designated (forwarding), and blocks the rest. Stale information ages out
// after MaxAge, and hello-timed BPDUs repair the tree after failures —
// which is exactly why recovery takes several hello rounds where DumbNet
// needs one notification flood.
package stp

import (
	"encoding/binary"

	"dumbnet/internal/dswitch"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
)

// EtherTypeBPDU marks spanning-tree protocol frames.
const EtherTypeBPDU uint16 = 0x8181

// Config sets protocol timers.
type Config struct {
	// HelloInterval is the BPDU transmission period.
	HelloInterval sim.Time
	// MaxAge is how long a stored BPDU stays valid without refresh.
	MaxAge sim.Time
	// ForwardTransition is the delay before a previously blocked port may
	// forward again — the RSTP proposal/agreement (or legacy
	// listening+learning) phase that dominates real reconvergence time.
	ForwardTransition sim.Time
	// LinkCost is the cost of every link (uniform fabric).
	LinkCost uint32
}

// DefaultConfig uses rapid-STP-scale timers (commodity switches in a data
// center run RSTP; classic 802.1D's 2 s hello / 20 s max-age would make the
// baseline absurdly slow).
func DefaultConfig() Config {
	return Config{
		HelloInterval:     50 * sim.Millisecond,
		MaxAge:            300 * sim.Millisecond,
		ForwardTransition: 150 * sim.Millisecond,
		LinkCost:          1,
	}
}

// bpdu is the priority vector exchanged between bridges.
type bpdu struct {
	Root   uint32 // lowest known bridge ID
	Cost   uint32 // path cost to root
	Bridge uint32 // transmitting bridge
	Port   uint16 // transmitting port
}

// better reports whether a beats b (lower is better, lexicographically).
func (a bpdu) better(b bpdu) bool {
	if a.Root != b.Root {
		return a.Root < b.Root
	}
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Bridge != b.Bridge {
		return a.Bridge < b.Bridge
	}
	return a.Port < b.Port
}

const bpduLen = packet.EthernetHeaderLen + 14

var bpduDst = packet.MAC{0x01, 0x80, 0xC2, 0x00, 0x00, 0x00}

func encodeBPDU(v bpdu) []byte {
	buf := make([]byte, bpduLen)
	copy(buf[0:6], bpduDst[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeBPDU)
	off := packet.EthernetHeaderLen
	binary.BigEndian.PutUint32(buf[off:], v.Root)
	binary.BigEndian.PutUint32(buf[off+4:], v.Cost)
	binary.BigEndian.PutUint32(buf[off+8:], v.Bridge)
	binary.BigEndian.PutUint16(buf[off+12:], v.Port)
	return buf
}

func decodeBPDU(frame []byte) (bpdu, bool) {
	if len(frame) < bpduLen || dswitch.EtherTypeOf(frame) != EtherTypeBPDU {
		return bpdu{}, false
	}
	off := packet.EthernetHeaderLen
	return bpdu{
		Root:   binary.BigEndian.Uint32(frame[off:]),
		Cost:   binary.BigEndian.Uint32(frame[off+4:]),
		Bridge: binary.BigEndian.Uint32(frame[off+8:]),
		Port:   binary.BigEndian.Uint16(frame[off+12:]),
	}, true
}

// PortRole is a port's spanning-tree role.
type PortRole uint8

// Port roles.
const (
	RoleDesignated PortRole = iota // forwarding, we own the segment
	RoleRoot                       // forwarding, toward the root
	RoleBlocked                    // discarding
	RoleEdge                       // forwarding, host-facing (no BPDUs heard)
)

// Bridge is one spanning-tree participant bound to a learning switch.
type Bridge struct {
	sw  *dswitch.LearningSwitch
	eng *sim.Engine
	cfg Config
	id  uint32

	// best BPDU heard per port and when it was heard.
	heard   map[int]bpdu
	heardAt map[int]sim.Time
	roles   map[int]PortRole
	// unblockEpoch invalidates stale forward-transition timers when a
	// port's role flaps during the transition.
	unblockEpoch map[int]uint64
}

// NewBridge attaches spanning tree to a learning switch and starts its
// hello timer. Bridge ID is the switch ID.
func NewBridge(eng *sim.Engine, sw *dswitch.LearningSwitch, cfg Config) *Bridge {
	b := &Bridge{
		sw:           sw,
		eng:          eng,
		cfg:          cfg,
		id:           uint32(sw.ID()),
		heard:        make(map[int]bpdu),
		heardAt:      make(map[int]sim.Time),
		roles:        make(map[int]PortRole),
		unblockEpoch: make(map[int]uint64),
	}
	sw.SetControl(b.onFrame)
	sw.SetMonitor(b.onPortChange)
	b.helloLoop()
	return b
}

// Role returns a port's current role.
func (b *Bridge) Role(port int) PortRole {
	if r, ok := b.roles[port]; ok {
		return r
	}
	return RoleEdge
}

// RootID returns the bridge's current view of the root.
func (b *Bridge) RootID() uint32 { return b.myVector().Root }

// IsRoot reports whether this bridge believes it is the root.
func (b *Bridge) IsRoot() bool { return b.RootID() == b.id }

// myVector computes the bridge's own priority vector: the best heard root
// plus link cost, or itself if nothing better is known.
func (b *Bridge) myVector() bpdu {
	best := bpdu{Root: b.id, Cost: 0, Bridge: b.id}
	now := b.eng.Now()
	for port, v := range b.heard {
		if now-b.heardAt[port] > b.cfg.MaxAge {
			continue // aged out
		}
		cand := bpdu{Root: v.Root, Cost: v.Cost + b.cfg.LinkCost, Bridge: b.id}
		if cand.Root < best.Root || (cand.Root == best.Root && cand.Cost < best.Cost) {
			best = cand
		}
	}
	return best
}

// onFrame consumes BPDUs.
func (b *Bridge) onFrame(inPort int, frame []byte) bool {
	v, ok := decodeBPDU(frame)
	if !ok {
		return false
	}
	prev, had := b.heard[inPort]
	b.heard[inPort] = v
	b.heardAt[inPort] = b.eng.Now()
	if !had || prev != v {
		b.recompute()
	}
	return true
}

// onPortChange reacts to the physical signal: a dead port's stored BPDU is
// flushed immediately (RSTP-style fast aging).
func (b *Bridge) onPortChange(port int, up bool) {
	if !up {
		delete(b.heard, port)
		delete(b.heardAt, port)
	}
	b.recompute()
	b.sendHellos()
}

// helloLoop transmits BPDUs periodically and expires stale entries.
func (b *Bridge) helloLoop() {
	b.expireStale()
	b.sendHellos()
	b.eng.After(b.cfg.HelloInterval, func() { b.helloLoop() })
}

func (b *Bridge) expireStale() {
	now := b.eng.Now()
	changed := false
	for port, at := range b.heardAt {
		if now-at > b.cfg.MaxAge {
			delete(b.heard, port)
			delete(b.heardAt, port)
			changed = true
		}
	}
	if changed {
		b.recompute()
	}
}

// sendHellos transmits the bridge's vector on every non-edge port (and on
// edge ports too — that is how neighbors learn we exist).
func (b *Bridge) sendHellos() {
	mine := b.myVector()
	for port := 1; port <= b.sw.Ports(); port++ {
		if b.sw.LinkAt(port) == nil {
			continue
		}
		v := mine
		v.Port = uint16(port)
		b.sw.SendRaw(port, encodeBPDU(v))
	}
}

// recompute reassigns port roles and programs blocking on the switch.
func (b *Bridge) recompute() {
	mine := b.myVector()
	now := b.eng.Now()

	// Root port: the port with the best live heard vector, if it beats us.
	rootPort := -1
	var rootBest bpdu
	for port := 1; port <= b.sw.Ports(); port++ {
		v, ok := b.heard[port]
		if !ok || now-b.heardAt[port] > b.cfg.MaxAge {
			continue
		}
		cand := bpdu{Root: v.Root, Cost: v.Cost + b.cfg.LinkCost, Bridge: v.Bridge, Port: v.Port}
		if rootPort == -1 || cand.better(rootBest) {
			rootPort, rootBest = port, cand
		}
	}
	if rootPort != -1 && rootBest.Root >= mine.Root && mine.Root == b.id {
		// We are the best root we know: no root port.
		rootPort = -1
	}

	for port := 1; port <= b.sw.Ports(); port++ {
		if b.sw.LinkAt(port) == nil {
			continue
		}
		var role PortRole
		switch {
		case port == rootPort:
			role = RoleRoot
		default:
			v, ok := b.heard[port]
			if !ok || now-b.heardAt[port] > b.cfg.MaxAge {
				role = RoleEdge // nothing on this segment speaks STP
			} else {
				ours := mine
				ours.Port = uint16(port)
				theirs := bpdu{Root: v.Root, Cost: v.Cost, Bridge: v.Bridge, Port: v.Port}
				// Compare our vector (as transmitted) against the
				// segment's: whoever is better is designated.
				if (bpdu{Root: ours.Root, Cost: ours.Cost, Bridge: ours.Bridge}).better(theirs) {
					role = RoleDesignated
				} else {
					role = RoleBlocked
				}
			}
		}
		prev := b.roles[port]
		b.roles[port] = role
		if role == RoleBlocked {
			// Blocking is always immediate (safety).
			b.unblockEpoch[port]++
			b.sw.SetBlocked(port, true)
		} else if b.sw.Blocked(port) {
			// Unblocking waits out the forwarding-transition delay, as a
			// real bridge's proposal/agreement (or listening+learning)
			// phase would.
			b.unblockEpoch[port]++
			epoch := b.unblockEpoch[port]
			p := port
			b.eng.After(b.cfg.ForwardTransition, func() {
				if b.unblockEpoch[p] == epoch && b.roles[p] != RoleBlocked {
					b.sw.SetBlocked(p, false)
				}
			})
		}
		_ = prev
	}
}

// Domain manages the bridges of one layer-2 domain.
type Domain struct {
	Bridges map[packet.SwitchID]*Bridge
}

// NewDomain starts spanning tree on every switch.
func NewDomain(eng *sim.Engine, switches map[packet.SwitchID]*dswitch.LearningSwitch, cfg Config) *Domain {
	d := &Domain{Bridges: make(map[packet.SwitchID]*Bridge, len(switches))}
	for id, sw := range switches {
		d.Bridges[id] = NewBridge(eng, sw, cfg)
	}
	return d
}

// Converged reports whether all bridges agree on one root and no two
// forwarding ports form a cycle candidate (approximated by agreement on the
// root — sufficient for tests on our small fabrics).
func (d *Domain) Converged() bool {
	var root uint32
	first := true
	for _, b := range d.Bridges {
		if first {
			root = b.RootID()
			first = false
		} else if b.RootID() != root {
			return false
		}
	}
	return true
}
