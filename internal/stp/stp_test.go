package stp

import (
	"testing"

	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

// sink collects frames delivered to a host NIC.
type sink struct {
	link   *sim.Link
	frames [][]byte
}

func (s *sink) Receive(port int, frame []byte) { s.frames = append(s.frames, frame) }

func rawFrame(dst, src packet.MAC, payload string) []byte {
	buf := make([]byte, 14+len(payload))
	copy(buf[0:6], dst[:])
	copy(buf[6:12], src[:])
	buf[12], buf[13] = 0x08, 0x00
	copy(buf[14:], payload)
	return buf
}

// dataFrames counts non-BPDU frames.
func dataFrames(frames [][]byte) int {
	n := 0
	for _, f := range frames {
		if len(f) >= 14 && (uint16(f[12])<<8|uint16(f[13])) != EtherTypeBPDU {
			n++
		}
	}
	return n
}

// buildLoop deploys a triangle of switches (1-2, 2-3, 1-3): the smallest
// topology where STP must block a port to prevent broadcast storms.
func buildLoop(t *testing.T) (*sim.Engine, *EthernetFabric, *sink, *sink, packet.MAC, packet.MAC) {
	t.Helper()
	tp := topo.New()
	for i := 1; i <= 3; i++ {
		if err := tp.AddSwitch(packet.SwitchID(i), 4); err != nil {
			t.Fatal(err)
		}
	}
	_ = tp.Connect(1, 1, 2, 1)
	_ = tp.Connect(2, 2, 3, 1)
	_ = tp.Connect(1, 2, 3, 2)
	m1, m2 := packet.MACFromUint64(1), packet.MACFromUint64(2)
	_ = tp.AttachHost(m1, 1, 3)
	_ = tp.AttachHost(m2, 3, 3)
	eng := sim.NewEngine(1)
	f, err := BuildEthernet(eng, tp, sim.LinkConfig{PropDelay: sim.Microsecond}, sim.Microsecond, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := &sink{}, &sink{}
	if h1.link, err = f.AttachHost(m1, h1, sim.LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if h2.link, err = f.AttachHost(m2, h2, sim.LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	return eng, f, h1, h2, m1, m2
}

func TestConvergenceOnLoop(t *testing.T) {
	eng, f, _, _, _, _ := buildLoop(t)
	eng.RunFor(sim.Second)
	if !f.Domain.Converged() {
		t.Fatal("no root agreement after 1s")
	}
	// Root must be the lowest bridge ID.
	for id, b := range f.Domain.Bridges {
		if b.RootID() != 1 {
			t.Fatalf("bridge %d thinks root is %d", id, b.RootID())
		}
	}
	if !f.Domain.Bridges[1].IsRoot() {
		t.Fatal("bridge 1 should be root")
	}
	// Exactly one switch port in the triangle must be blocked.
	blocked := 0
	for _, b := range f.Domain.Bridges {
		for port := 1; port <= 2; port++ { // inter-switch ports
			if b.Role(port) == RoleBlocked {
				blocked++
			}
		}
	}
	if blocked != 1 {
		t.Fatalf("blocked ports = %d, want 1", blocked)
	}
}

func TestBroadcastDoesNotStorm(t *testing.T) {
	eng, _, h1, h2, m1, _ := buildLoop(t)
	eng.RunFor(sim.Second) // converge
	h1.link.SendFrom(h1, rawFrame(packet.BroadcastMAC, m1, "storm?"))
	eng.RunFor(sim.Second)
	if got := dataFrames(h2.frames); got != 1 {
		t.Fatalf("h2 received %d copies of the broadcast, want 1", got)
	}
	if got := dataFrames(h1.frames); got != 0 {
		t.Fatalf("broadcast echoed to sender %d times", got)
	}
}

func TestUnicastAfterConvergence(t *testing.T) {
	eng, _, h1, h2, m1, m2 := buildLoop(t)
	eng.RunFor(sim.Second)
	h1.link.SendFrom(h1, rawFrame(m2, m1, "ping"))
	eng.RunFor(100 * sim.Millisecond)
	if dataFrames(h2.frames) != 1 {
		t.Fatal("unicast not delivered")
	}
	// Reply is unicast-forwarded thanks to learning.
	h2.link.SendFrom(h2, rawFrame(m1, m2, "pong"))
	eng.RunFor(100 * sim.Millisecond)
	if dataFrames(h1.frames) != 1 {
		t.Fatal("reply not delivered")
	}
}

func TestReconvergenceAfterFailure(t *testing.T) {
	eng, f, h1, h2, m1, m2 := buildLoop(t)
	eng.RunFor(sim.Second)
	// Establish traffic, then cut the direct 1-3 link (on the tree, since
	// root is 1: 1-2 and 1-3 forward, 2-3 blocked at one end).
	h1.link.SendFrom(h1, rawFrame(m2, m1, "before"))
	eng.RunFor(100 * sim.Millisecond)
	if dataFrames(h2.frames) != 1 {
		t.Fatal("pre-failure traffic failed")
	}
	if err := f.FailLink(1, 3); err != nil {
		t.Fatal(err)
	}
	// Give the protocol time to reconverge (several hello rounds).
	eng.RunFor(2 * sim.Second)
	if !f.Domain.Converged() {
		t.Fatal("no reconvergence after failure")
	}
	h1.link.SendFrom(h1, rawFrame(m2, m1, "after"))
	eng.RunFor(200 * sim.Millisecond)
	if dataFrames(h2.frames) != 2 {
		t.Fatalf("post-failure traffic failed: %d", dataFrames(h2.frames))
	}
}

func TestReconvergenceTimeBounded(t *testing.T) {
	// Recovery should take on the order of MaxAge + a few hellos, far less
	// than a second with RSTP-scale timers.
	eng, f, h1, h2, m1, m2 := buildLoop(t)
	eng.RunFor(sim.Second)
	h1.link.SendFrom(h1, rawFrame(m2, m1, "prime"))
	eng.RunFor(100 * sim.Millisecond)
	if err := f.FailLink(1, 3); err != nil {
		t.Fatal(err)
	}
	failAt := eng.Now()
	var recovered sim.Time = -1
	for elapsed := 50 * sim.Millisecond; elapsed <= 2*sim.Second; elapsed += 50 * sim.Millisecond {
		eng.RunUntil(failAt + elapsed)
		before := dataFrames(h2.frames)
		h1.link.SendFrom(h1, rawFrame(m2, m1, "probe"))
		eng.RunFor(20 * sim.Millisecond)
		if dataFrames(h2.frames) > before {
			recovered = eng.Now() - failAt
			break
		}
	}
	if recovered < 0 {
		t.Fatal("never recovered")
	}
	if recovered > sim.Second {
		t.Fatalf("recovery took %v, want < 1s", recovered.Duration())
	}
}

func TestLeafSpineSTPBlocksRedundantPaths(t *testing.T) {
	tp, _ := topo.LeafSpine(2, 3, 1, 8)
	eng := sim.NewEngine(1)
	f, err := BuildEthernet(eng, tp, sim.LinkConfig{PropDelay: sim.Microsecond}, sim.Microsecond, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(2 * sim.Second)
	if !f.Domain.Converged() {
		t.Fatal("leaf-spine did not converge")
	}
	// A leaf-spine with 2 spines and 3 leaves has 6 links but a spanning
	// tree uses only 4: exactly 2 switch-side port pairs must be blocked.
	blocked := 0
	for _, b := range f.Domain.Bridges {
		for port := 1; port <= 8; port++ {
			if b.sw.LinkAt(port) != nil && b.Role(port) == RoleBlocked {
				blocked++
			}
		}
	}
	if blocked != 2 {
		t.Fatalf("blocked = %d switch ports, want 2", blocked)
	}
}

func TestBPDUCodec(t *testing.T) {
	in := bpdu{Root: 1, Cost: 7, Bridge: 9, Port: 3}
	out, ok := decodeBPDU(encodeBPDU(in))
	if !ok || out != in {
		t.Fatalf("round trip: %+v %v", out, ok)
	}
	if _, ok := decodeBPDU([]byte{1, 2, 3}); ok {
		t.Fatal("short frame decoded")
	}
	if _, ok := decodeBPDU(rawFrame(packet.MACFromUint64(1), packet.MACFromUint64(2), "data-frame-payload")); ok {
		t.Fatal("data frame decoded as BPDU")
	}
}

func TestBPDUBetterOrdering(t *testing.T) {
	base := bpdu{Root: 5, Cost: 5, Bridge: 5, Port: 5}
	cases := []struct {
		v      bpdu
		better bool
	}{
		{bpdu{Root: 4, Cost: 9, Bridge: 9, Port: 9}, true},
		{bpdu{Root: 5, Cost: 4, Bridge: 9, Port: 9}, true},
		{bpdu{Root: 5, Cost: 5, Bridge: 4, Port: 9}, true},
		{bpdu{Root: 5, Cost: 5, Bridge: 5, Port: 4}, true},
		{bpdu{Root: 6, Cost: 0, Bridge: 0, Port: 0}, false},
		{base, false},
	}
	for i, c := range cases {
		if c.v.better(base) != c.better {
			t.Fatalf("case %d: better(%+v) = %v", i, c.v, !c.better)
		}
	}
}
