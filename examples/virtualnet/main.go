// Network virtualization (paper §6.1): tenants get restricted topology
// views, and the path verifier rejects routes that leave a tenant's slice —
// all enforced in host software over the same dumb switches.
//
//	go run ./examples/virtualnet
package main

import (
	"fmt"
	"log"

	"dumbnet/internal/packet"
	"dumbnet/internal/topo"
	"dumbnet/internal/vnet"
)

func main() {
	log.SetFlags(0)
	t, err := topo.Testbed()
	if err != nil {
		log.Fatal(err)
	}
	hosts := t.Hosts()
	macs := make([]packet.MAC, len(hosts))
	for i, h := range hosts {
		macs[i] = h.Host
	}

	mgr := vnet.NewManager(t, topo.PathGraphOptions{S: 2, Epsilon: 1}, 1)
	red, err := mgr.CreateTenant("red", macs[0:6])
	if err != nil {
		log.Fatal(err)
	}
	blue, err := mgr.CreateTenant("blue", macs[10:16])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d switches total\n", t.NumSwitches())
	fmt.Printf("tenant red:  %d hosts, view covers %d switches / %d links\n",
		len(red.Hosts()), red.View().NumSwitches(), red.View().NumLinks())
	fmt.Printf("tenant blue: %d hosts, view covers %d switches / %d links\n",
		len(blue.Hosts()), blue.View().NumSwitches(), blue.View().NumLinks())

	// Intra-tenant routing works and verifies.
	tags, err := mgr.PathFor("red", macs[0], macs[5])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nred %v -> %v: path %v\n", macs[0], macs[5], tags)
	if err := mgr.VerifyRoute("red", macs[0], macs[5], tags); err != nil {
		log.Fatalf("verifier rejected a legal route: %v", err)
	}
	fmt.Println("verifier: legal intra-tenant route ACCEPTED")

	// Cross-tenant routing is rejected even though the fabric could do it.
	crossTags, err := t.HostPath(macs[0], macs[10], nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.VerifyRoute("red", macs[0], macs[10], crossTags); err != nil {
		fmt.Printf("verifier: cross-tenant route REJECTED (%v)\n", err)
	} else {
		log.Fatal("isolation violated!")
	}

	// A failure patches every tenant view at once.
	before := red.View().NumLinks()
	mgr.ApplyLinkDown(1, 1)
	fmt.Printf("\nafter link 1:1 failure: red view links %d -> %d\n", before, red.View().NumLinks())
}
