// Quickstart: bring up the paper's 7-switch testbed, discover the topology
// with probe messages through the dumb switches, and pass traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dumbnet/internal/core"
	"dumbnet/internal/topo"
)

func main() {
	log.SetFlags(0)

	// The paper's prototype fabric: 2 spines, 5 leaves, 27 servers.
	t, err := topo.Testbed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d stateless switches, %d links, %d hosts\n",
		t.NumSwitches(), t.NumLinks(), t.NumHosts())

	net, err := core.New(t)
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrapping runs the real §4.1 algorithm: the controller probes
	// every port pair with tag-routed packets; switches answer ID queries;
	// hosts answer probe messages. No switch configuration anywhere.
	report, err := net.Discover(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %s\n", report)

	// Application traffic: hosts ask the controller for a path graph once,
	// then source-route every packet themselves.
	hosts := net.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	if err := net.OnReceive(dst, func(from core.MAC, payload []byte) {
		fmt.Printf("%v received %q from %v\n", dst, payload, from)
	}); err != nil {
		log.Fatal(err)
	}
	if err := net.Send(src, dst, []byte("hello, stateless fabric")); err != nil {
		log.Fatal(err)
	}
	net.Run()

	// RTTs: the first packet of a pair pays one controller round trip;
	// everything after rides the PathTable.
	cold, err := net.PingSync(src, hosts[1])
	if err != nil {
		log.Fatal(err)
	}
	warm, err := net.PingSync(src, hosts[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rtt: cold %v (controller query) vs warm %v (cached path)\n",
		cold.Duration(), warm.Duration())
}
