// Failover: demonstrate DumbNet's two-stage failure handling (paper §4.2).
// A link dies mid-conversation; switches flood hop-limited notifications,
// hosts patch their caches and fail over to pre-cached detours before the
// controller has even spoken, then the controller's topology patch arrives.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"dumbnet/internal/core"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

func main() {
	log.SetFlags(0)
	t, err := topo.Testbed()
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.New(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Bootstrap(); err != nil {
		log.Fatal(err)
	}
	net.WarmAll()

	hosts := net.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	fmt.Printf("conversation: %v <-> %v (cross-leaf, two spine paths)\n", src, dst)

	// Watch the failure handling on the source host.
	agent := net.Agent(src)
	agent.OnLinkEvent = func(ev *packet.LinkEvent) {
		fmt.Printf("  [%8v] stage 1: host heard link event sw=%d port=%d up=%v\n",
			net.Eng.Now().Duration(), ev.Switch, ev.Port, ev.Up)
	}
	agent.OnPatch = func(p *topo.Patch) {
		fmt.Printf("  [%8v] stage 2: controller patch v%d (%d ops)\n",
			net.Eng.Now().Duration(), p.Version, len(p.Ops))
	}

	rtt, err := net.PingSync(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before failure: rtt %v, path queries so far: %d\n",
		rtt.Duration(), agent.Stats().PathQueries)

	srcAt, _ := t.HostAt(src)
	fmt.Printf("\ncutting spine link 1 <-> %d ...\n", srcAt.Switch)
	if err := net.FailLink(1, srcAt.Switch); err != nil {
		log.Fatal(err)
	}
	net.RunFor(50 * sim.Millisecond)

	rtt, err = net.PingSync(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	st := agent.Stats()
	fmt.Printf("\nafter failure: rtt %v — still connected via the other spine\n", rtt.Duration())
	fmt.Printf("host stats: %d distinct link events, %d floods sent, %d patches, %d total controller queries (unchanged)\n",
		st.EventsSeen, st.FloodsSent, st.PatchesAppled, st.PathQueries)
	fmt.Println("\nkey point: recovery used only pre-cached paths — zero controller round trips on the critical path")
}
