// Traffic engineering: the flowlet extension (paper §6.2) in action. Two
// hosts exchange bursty traffic across a two-spine fabric; with the default
// per-flow binding everything sticks to one spine, while the flowlet
// chooser re-randomizes the path whenever a burst pauses, spreading load
// over both spines — implemented entirely in host software.
//
//	go run ./examples/trafficengineering
package main

import (
	"fmt"
	"log"

	"dumbnet/internal/core"
	"dumbnet/internal/host"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

// spineBytes sums bytes forwarded through each spine switch.
func spineBytes(net *core.Network, spines []core.SwitchID) map[core.SwitchID]uint64 {
	out := make(map[core.SwitchID]uint64)
	for _, s := range spines {
		out[s] = net.Fab.Switch(s).Stats().Forwarded
	}
	return out
}

func run(name string, flowlet bool) {
	t, err := topo.LeafSpine(2, 2, 2, 16)
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.New(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Bootstrap(); err != nil {
		log.Fatal(err)
	}
	net.WarmAll()
	hosts := net.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	if flowlet {
		net.Agent(src).SetPolicy(host.NewFlowletChooser(200 * sim.Microsecond))
	}
	// 40 bursts of 20 packets with inter-burst gaps beyond the flowlet
	// timeout: every burst is one flowlet.
	payload := make([]byte, 1000)
	for burst := 0; burst < 40; burst++ {
		for p := 0; p < 20; p++ {
			if err := net.Send(src, dst, payload); err != nil {
				log.Fatal(err)
			}
		}
		net.RunFor(sim.Millisecond) // gap > flowlet timeout
	}
	net.Run()
	counts := spineBytes(net, []core.SwitchID{1, 2})
	fmt.Printf("%-22s spine1=%4d frames   spine2=%4d frames\n", name, counts[1], counts[2])
}

func main() {
	log.SetFlags(0)
	fmt.Println("800 packets in 40 bursts, two equal-cost spine paths:")
	run("per-flow binding:", false)
	run("flowlet TE (§6.2):", true)
	fmt.Println("\nflowlet TE spreads bursts across both spines; per-flow binding pins everything to one")
}
