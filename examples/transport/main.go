// Receiver-driven transport: the pHost-style extension (§6.1) running over
// the testbed. Eight senders incast into one receiver; token pacing keeps
// the fabric lossless and SRPT lets a late short flow jump the queue.
//
//	go run ./examples/transport
package main

import (
	"fmt"
	"log"

	"dumbnet/internal/core"
	"dumbnet/internal/phost"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

func main() {
	log.SetFlags(0)
	t, err := topo.Testbed()
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.New(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Bootstrap(); err != nil {
		log.Fatal(err)
	}
	net.WarmAll()
	hosts := net.Hosts()

	tr := make(map[core.MAC]*phost.Transport)
	for _, m := range hosts {
		tr[m] = phost.New(net.Eng, net.Agent(m), phost.DefaultConfig())
	}
	dst := hosts[0]

	fmt.Println("8-to-1 incast, 2 MB each, receiver-paced:")
	for i := 1; i <= 8; i++ {
		src := hosts[i]
		if _, err := tr[src].SendFlow(dst, 2_000_000, func(d sim.Time) {
			fmt.Printf("  long flow from %v done in %v\n", src, d.Duration())
		}); err != nil {
			log.Fatal(err)
		}
	}
	// A latency-sensitive short flow arrives late; SRPT serves it first.
	net.RunFor(500 * sim.Microsecond)
	short := hosts[9]
	if _, err := tr[short].SendFlow(dst, 100_000, func(d sim.Time) {
		fmt.Printf("  SHORT flow from %v done in %v (jumped the queue)\n", short, d.Duration())
	}); err != nil {
		log.Fatal(err)
	}
	net.Run()

	drops := uint64(0)
	for _, l := range net.Fab.Links() {
		drops += l.StatsFrom(true).Drops + l.StatsFrom(false).Drops
	}
	st := tr[dst].Stats()
	fmt.Printf("\nreceiver: %d flows, %d tokens granted, %d retransmission tokens\n",
		st.FlowsReceived, st.TokensSent, st.Retransmits)
	fmt.Printf("fabric drops during the incast: %d (receiver pacing keeps queues empty)\n", drops)
}
