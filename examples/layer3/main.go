// Layer-3 routing (paper §6.3): a software router built from a plain host
// agent connects two IP subnets over one DumbNet fabric, and the shortcut
// optimization lets sources bypass the router after the first exchange.
//
//	go run ./examples/layer3
package main

import (
	"fmt"
	"log"

	"dumbnet/internal/core"
	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/router"
	"dumbnet/internal/topo"
)

func main() {
	log.SetFlags(0)
	t, err := topo.Testbed()
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.New(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Bootstrap(); err != nil {
		log.Fatal(err)
	}
	hosts := net.Hosts()

	// Subnet 10/8: hosts[0..2]; subnet 11/8: hosts[10..12]; the router
	// runs on hosts[20] — just another host agent.
	subA := map[router.IP]packet.MAC{}
	subB := map[router.IP]packet.MAC{}
	for i := 0; i < 3; i++ {
		subA[router.IP(0x0A000001+i)] = hosts[i]
		subB[router.IP(0x0B000001+i)] = hosts[10+i]
	}
	gw := router.New(net.Agent(hosts[20]))
	gw.AddSubnet(router.Prefix{Addr: 0x0A000000, Bits: 8}, subA)
	gw.AddSubnet(router.Prefix{Addr: 0x0B000000, Bits: 8}, subB)
	fmt.Printf("router on %v: 10.0.0.0/8 (3 hosts) and 11.0.0.0/8 (3 hosts)\n", gw.MAC())

	srcMAC := subA[0x0A000001]
	dstIP := router.IP(0x0B000001)
	dstMAC := subB[dstIP]
	net.Agent(dstMAC).OnData = func(from packet.MAC, it uint16, payload []byte) {
		s, d, body, err := router.DecodeIP(payload)
		if err != nil {
			return
		}
		fmt.Printf("  host %v got %q (ip %08x -> %08x, L2 from %v)\n", dstMAC, body, s, d, from)
	}

	// 1. Through the gateway.
	fmt.Println("\nvia router:")
	pkt := router.EncodeIP(0x0A000001, dstIP, []byte("routed hop"))
	if err := net.Agent(srcMAC).Send(gw.MAC(), packet.EtherTypeIPv4, pkt, host.FlowKey{Dst: gw.MAC()}); err != nil {
		log.Fatal(err)
	}
	net.Run()

	// 2. §6.3 shortcut: ask the router once, then source-route directly.
	fmt.Println("\nvia cross-subnet shortcut:")
	direct, err := gw.Shortcut(dstIP)
	if err != nil {
		log.Fatal(err)
	}
	pkt = router.EncodeIP(0x0A000001, dstIP, []byte("direct source-routed"))
	if err := net.Agent(srcMAC).Send(direct, packet.EtherTypeIPv4, pkt, host.FlowKey{Dst: direct}); err != nil {
		log.Fatal(err)
	}
	net.Run()
	fmt.Printf("\nrouter stats: %+v (the shortcut packet never touched it)\n", gw.Stats())
}
