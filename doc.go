// Package dumbnet is a from-scratch reproduction of "DumbNet: A Smart Data
// Center Network Fabric with Dumb Switches" (Li et al., EuroSys 2018): a
// data-center network whose switches keep no state — hosts source-route
// every packet with per-hop port tags, and all control-plane functions
// (topology discovery, routing, failure handling, traffic engineering) run
// in host software plus a replicated controller.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record of every table and
// figure. The runnable entry points are:
//
//	cmd/dumbnet-bench      regenerate the paper's tables and figures
//	cmd/dumbnet-emu        bring up a fabric and drive it end to end
//	cmd/dumbnet-locreport  code-size breakdown (Table 1 analogue)
//	examples/...           five worked examples of the public API
package dumbnet
