module dumbnet

go 1.22
