// Command dumbnet-emu brings up a DumbNet fabric on the simulator and
// exercises it end to end: probe-based topology discovery, all-pairs
// connectivity, latency measurement and failure injection — the CLI
// equivalent of racking the paper's testbed.
//
//	dumbnet-emu -topo testbed
//	dumbnet-emu -topo fattree -k 4 -fail
//	dumbnet-emu -topo cube -n 3 -pings 5
//	dumbnet-emu -topo leafspine -k 6 -n 2 -chaos -chaos-seed 42 -loss 0.01 -ctrl-crash
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dumbnet/internal/chaos"
	"dumbnet/internal/core"
	"dumbnet/internal/host"
	"dumbnet/internal/hybrid"
	"dumbnet/internal/mcast"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/telemetry"
	"dumbnet/internal/topo"
	"dumbnet/internal/trace"
	"dumbnet/internal/workload"
)

func buildTopology(kind string, k, n int) (*topo.Topology, int, error) {
	switch kind {
	case "testbed":
		t, err := topo.Testbed()
		return t, 16, err
	case "fattree":
		t, err := topo.FatTree(k, 0, 0)
		return t, k + 1, err
	case "cube":
		t, err := topo.Cube(n, 1, 0)
		return t, 8, err
	case "leafspine":
		t, err := topo.LeafSpine(2, k, n, 0)
		return t, n + 4, err
	default:
		return nil, 0, fmt.Errorf("unknown topology %q (testbed|fattree|cube|leafspine)", kind)
	}
}

func main() {
	var (
		kind     = flag.String("topo", "testbed", "topology: testbed|fattree|cube|leafspine")
		k        = flag.Int("k", 4, "fat-tree arity / leaf count")
		n        = flag.Int("n", 3, "cube side / hosts per leaf")
		pings    = flag.Int("pings", 3, "pings per sampled host pair")
		fail     = flag.Bool("fail", false, "inject a link failure mid-run")
		discover = flag.Bool("discover", true, "use probe-based discovery (false: install topology directly)")
		iperf    = flag.Duration("iperf", 0, "run a goodput measurement for this long (e.g. 100ms)")
		stats    = flag.Bool("stats", false, "query per-switch counters at the end")
		policy   = flag.String("policy", "", "host routing policy: "+strings.Join(host.PolicyNames(), "|")+" (default: sticky)")
		shards   = flag.Int("shards", 1, "parallel simulation shards (1 = classic single-engine run)")
		tenants  = flag.Int("tenants", 0, "carve hosts into this many isolated tenants (0 = virtualization off)")
		hflood   = flag.Bool("host-flood", true, "stage-1 peer-to-peer link-event flooding on hosts (disable on very large fabrics: the flood is O(hosts²) frames per event)")

		chaosOn   = flag.Bool("chaos", false, "run a seeded chaos scenario after bringup")
		chaosSeed = flag.Int64("chaos-seed", 1, "chaos scenario seed (same seed, same event trace)")
		chaosEvts = flag.Int("chaos-events", 24, "randomized fail/heal events to inject")
		loss      = flag.Float64("loss", 0.01, "per-frame loss probability on fabric links during chaos")
		corrupt   = flag.Float64("corrupt", 0, "per-frame single-bit corruption probability during chaos")
		flap      = flag.Bool("flap", true, "include link-flap events in the chaos mix")
		crashSw   = flag.Bool("crash-switches", true, "include switch crash/restart events in the chaos mix")
		ctrlCrash = flag.Bool("ctrl-crash", false, "crash the primary controller mid-chaos (attaches 2 replicas)")
		churn     = flag.Bool("churn", false, "interleave tenant create/delete/migrate events into the chaos mix (needs -tenants)")
		mcastSoak = flag.Bool("mcast", false, "carve multicast groups before impairment and probe them through the chaos mix")
		checkCap  = flag.Int("check-cap", 0, "cap post-chaos pair sweeps at this many host pairs (0 = exhaustive)")

		collective = flag.Bool("collective", false, "run the collective workloads: a real multicast broadcast over the fabric, then the flow-level collective suite")
		mcastBytes = flag.Int("collective-bytes", 100e6, "payload size for the flow-level collective suite")

		hybridOn = flag.Bool("hybrid", false, "attach the hybrid fluid-flow layer and run a bulk-transfer wave through it (incompatible with -shards)")
		hybridMB = flag.Int("hybrid-mb", 8, "per-transfer size in MB for the -hybrid wave")

		federate = flag.Int("federate", 0, "federate this many copies of the chosen topology over WAN links (>=2; one fabric per shard, cross-fabric traffic + optional -chaos WAN battery)")
		wanDelay = flag.Duration("wan-delay", 5*time.Millisecond, "WAN link propagation delay between federated fabrics")
		gateways = flag.Int("gateways", 2, "border gateways per federated fabric pair (= parallel WAN links)")

		telemetryOn   = flag.Bool("telemetry", false, "attach streaming trace analytics (congestion scoreboard, heavy hitters, heal SLO) with a live summary")
		telemetryWin  = flag.Duration("telemetry-window", 0, "telemetry aggregation window (0 = package default)")
		telemetryTap  = flag.Int("telemetry-tap", 0, "per-shard tap buffer capacity in records; bursts beyond it are drop-counted, not blocking (0 = package default)")
		telemetryJSON = flag.String("telemetry-json", "", "write the final merged telemetry snapshot as JSON to this file")

		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON flight-recorder dump to this file")
		traceSample = flag.Uint64("trace-sample", 1, "packet-hop sampling: record flows where hash%N==0 (0 disables hop records)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	log.SetFlags(0)

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	writeMemProfile := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
	defer writeMemProfile()

	if *federate >= 2 {
		tcfg := telemetry.DefaultConfig()
		if *telemetryWin > 0 {
			tcfg.Window = sim.FromDuration(*telemetryWin)
		}
		var tele *telemetry.Config
		if *telemetryOn {
			tele = &tcfg
		}
		runFederated(*kind, *k, *n, *federate, *wanDelay, *gateways, *pings, tele,
			*chaosOn, *chaosSeed, *chaosEvts)
		return
	}

	t, maxPorts, err := buildTopology(*kind, *k, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d switches, %d links, %d hosts\n",
		t.NumSwitches(), t.NumLinks(), t.NumHosts())

	var opts []core.Option
	if *shards > 1 {
		opts = append(opts, core.WithShards(*shards))
	}
	if *policy != "" {
		opts = append(opts, core.WithPolicy(*policy))
	}
	if *tenants > 0 || *churn {
		opts = append(opts, core.WithTenants(*tenants))
	}
	if !*hflood {
		opts = append(opts, core.WithHostFlood(false))
	}
	if *hybridOn {
		opts = append(opts, core.WithHybridFlows(hybrid.Config{}))
	}
	telemetryCfg := telemetry.DefaultConfig()
	if *telemetryOn {
		if *telemetryWin > 0 {
			telemetryCfg.Window = sim.FromDuration(*telemetryWin)
		}
		if *telemetryTap > 0 {
			telemetryCfg.TapCapacity = *telemetryTap
		}
		opts = append(opts, core.WithTelemetry(telemetryCfg))
	}
	net, err := core.New(t, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if g := net.SimGroup(); g != nil {
		fmt.Printf("engine: %d shards, lookahead %v\n", g.NumShards(), g.Lookahead().Duration())
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		tcfg := trace.DefaultConfig()
		tcfg.SampleMod = *traceSample
		rec = trace.NewRecorder(tcfg)
		net.Eng.SetTracer(rec)
	}
	writeTrace := func() {
		if rec == nil {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		defer f.Close()
		if err := trace.WriteChrome(f, rec.Records()); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("trace: wrote %d records to %s (%d recorded, %d overwritten)\n",
			rec.Len(), *traceOut, rec.Total(), rec.Overwritten())
	}
	defer writeTrace()
	if *discover {
		report, err := net.Discover(maxPorts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("discovery: %s\n", report)
	} else {
		if err := net.Bootstrap(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("bootstrap: topology installed directly")
	}

	hosts := net.Hosts()
	if len(hosts) < 2 {
		fmt.Println("not enough hosts for traffic")
		os.Exit(0)
	}
	if v := net.Vnet(); v != nil {
		fmt.Printf("virtualization: %d tenants over %d hosts\n", v.Count(), len(hosts))
	}
	if *telemetryOn {
		hub := net.Telemetry()
		if hub == nil {
			log.Fatal("telemetry: hub missing after bringup")
		}
		fmt.Printf("telemetry: streaming analytics on, window %v\n", telemetryCfg.Window.Duration())
		// Live summary line every 25 windows. Single-engine runs only: the
		// merged view must not be read from inside a shard goroutine.
		if net.SimGroup() == nil {
			every := 25 * telemetryCfg.Window
			var tick func()
			tick = func() {
				fmt.Printf("telemetry @%v: %s\n", net.Eng.Now().Duration(), hub.SummaryLine())
				net.Eng.After(every, tick)
			}
			net.Eng.After(every, tick)
		}
	}
	// Sample a few pairs spread across the host list. With tenancy on, the
	// slices are the traffic domains, so sample inside the first tenant.
	pairs := [][2]core.MAC{
		{hosts[0], hosts[len(hosts)-1]},
		{hosts[len(hosts)/2], hosts[0]},
		{hosts[len(hosts)-1], hosts[len(hosts)/2]},
	}
	if v := net.Vnet(); v != nil && v.Count() > 0 {
		ids := v.Tenants()
		members, err := v.Members(ids[0])
		if err != nil || len(members) < 2 {
			log.Fatalf("tenant %s has no usable member pair", ids[0])
		}
		pairs = [][2]core.MAC{
			{members[0], members[len(members)-1]},
			{members[len(members)/2], members[0]},
			{members[len(members)-1], members[len(members)/2]},
		}
	}
	for _, pr := range pairs {
		for i := 0; i < *pings; i++ {
			rtt, err := net.PingSync(pr[0], pr[1])
			if err != nil {
				log.Fatalf("ping %v -> %v: %v", pr[0], pr[1], err)
			}
			fmt.Printf("ping %v -> %v: rtt %v\n", pr[0], pr[1], rtt.Duration())
		}
	}

	if *fail {
		ids := t.SwitchIDs()
		var a, b core.SwitchID
		found := false
		for _, id := range ids {
			for _, nb := range t.Neighbors(id) {
				a, b, found = id, nb.Sw, true
				break
			}
			if found {
				break
			}
		}
		if found {
			fmt.Printf("\ninjecting failure on link %d <-> %d\n", a, b)
			if err := net.FailLink(a, b); err != nil {
				log.Fatal(err)
			}
			net.RunFor(100 * sim.Millisecond)
			rtt, err := net.PingSync(pairs[0][0], pairs[0][1])
			if err != nil {
				log.Fatalf("post-failure ping failed: %v", err)
			}
			fmt.Printf("post-failure ping %v -> %v: rtt %v (failover worked)\n",
				pairs[0][0], pairs[0][1], rtt.Duration())
		}
	}
	if *chaosOn {
		net.WarmAll()
		if *ctrlCrash {
			// Attach two fabric-side controller replicas so hosts have
			// somewhere to fail over when the primary dies.
			r1, r2 := hosts[len(hosts)/3], hosts[2*len(hosts)/3]
			if r1 == r2 {
				r2 = hosts[len(hosts)-1]
			}
			if _, err := net.EnableReplicationAt([]core.MAC{r1, r2}); err != nil {
				log.Fatalf("chaos: enabling replication: %v", err)
			}
			fmt.Printf("\ncontroller replicas attached at %v, %v\n", r1, r2)
		}
		ccfg := chaos.DefaultConfig(*chaosSeed)
		ccfg.Events = *chaosEvts
		ccfg.Loss = *loss
		ccfg.Corrupt = *corrupt
		ccfg.Flap = *flap
		ccfg.CrashSwitches = *crashSw
		ccfg.CrashController = *ctrlCrash
		ccfg.TenantChurn = *churn
		ccfg.Mcast = *mcastSoak
		ccfg.MaxPairChecks = *checkCap
		fmt.Printf("\nchaos: seed %d, %d events, loss %.3f, corrupt %.3f, flap %v, crash-switches %v, ctrl-crash %v, churn %v, mcast %v\n",
			*chaosSeed, *chaosEvts, *loss, *corrupt, *flap, *crashSw, *ctrlCrash, *churn, *mcastSoak)
		rep, err := chaos.Run(net, ccfg)
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		for _, e := range rep.Trace {
			fmt.Printf("  %v\n", e)
		}
		fmt.Printf("chaos: event digest %016x\n", rep.Digest())
		fmt.Print(net.Eng.Metrics().Snapshot(int64(net.Eng.Now())).Table("fabric metrics (non-zero)", true))
		if s := rep.TimelineSummary(); s != "" {
			fmt.Print(s)
		}
		if rep.Ok() {
			fmt.Printf("chaos: all invariants held (%d ping retries during re-convergence)\n", rep.PingRetries)
		} else {
			for _, v := range rep.Violations {
				fmt.Printf("chaos: INVARIANT VIOLATED — %v\n", v)
			}
			writeTrace()
			writeMemProfile()
			os.Exit(1)
		}
	}

	if *collective {
		runCollective(net, hosts, float64(*mcastBytes))
	}

	if *hybridOn {
		runHybridWave(net, hosts, *hybridMB)
	}

	if *iperf > 0 {
		src, dst := pairs[0][0], pairs[0][1]
		fmt.Printf("\niperf %v -> %v for %v:\n", src, dst, *iperf)
		const frame = 1464
		received := 0
		if err := net.OnReceive(dst, func(core.MAC, []byte) { received++ }); err != nil {
			log.Fatal(err)
		}
		deadline := net.Eng.Now() + sim.FromDuration(*iperf)
		payload := make([]byte, frame-64)
		var pump func()
		pump = func() {
			if net.Eng.Now() >= deadline {
				return
			}
			for i := 0; i < 8; i++ {
				_ = net.Send(src, dst, payload)
			}
			net.Eng.After(10*sim.Microsecond, pump)
		}
		pump()
		net.Run()
		gbps := float64(received) * frame * 8 / (*iperf).Seconds() / 1e9
		fmt.Printf("  delivered %d frames, goodput %.2f Gbps\n", received, gbps)
	}

	if *stats {
		fmt.Println("\nper-switch counters (source-routed stats queries):")
		for _, id := range t.SwitchIDs() {
			id := id
			net.Ctrl.QuerySwitchStats(id, func(r *packet.StatsReply, err error) {
				if err != nil {
					fmt.Printf("  switch %d: %v\n", id, err)
					return
				}
				fmt.Printf("  switch %d: forwarded=%d dropped=%d marked=%d floods=%d\n",
					r.ID, r.Forwarded, r.Dropped, r.Marked, r.Floods)
			})
		}
		net.Run()
	}

	if *telemetryOn {
		hub := net.Telemetry()
		fmt.Printf("\ntelemetry final: %s\n", hub.SummaryLine())
		if *telemetryJSON != "" {
			data, err := hub.SnapshotJSON()
			if err != nil {
				log.Fatalf("telemetry: %v", err)
			}
			if err := os.WriteFile(*telemetryJSON, append(data, '\n'), 0o644); err != nil {
				log.Fatalf("telemetry: %v", err)
			}
			fmt.Printf("telemetry: wrote merged snapshot to %s\n", *telemetryJSON)
		}
	}

	fmt.Printf("\nvirtual time elapsed: %v, events processed: %d\n",
		net.Eng.Now().Duration(), net.Eng.Processed())
}

// runHybridWave pushes a ring of bulk transfers through the fluid layer —
// every host sends to its third successor — and reports flow completion
// times, layer statistics and the completion digest. Same seed, same
// digest: the line is usable as a determinism golden.
func runHybridWave(net *core.Network, hosts []core.MAC, mb int) {
	fmt.Println("\nhybrid fluid wave:")
	n := len(hosts)
	bytes := int64(mb) << 20
	var minFCT, maxFCT sim.Time
	done := 0
	for i := 0; i < n; i++ {
		_, err := net.OpenFlow(hosts[i], hosts[(i+3)%n], bytes, func(f *hybrid.Flow) {
			fct := f.FCT()
			if done == 0 || fct < minFCT {
				minFCT = fct
			}
			if fct > maxFCT {
				maxFCT = fct
			}
			done++
		})
		if err != nil {
			log.Fatalf("hybrid: open flow: %v", err)
		}
	}
	net.Run()
	st := net.Hybrid().Stats()
	fmt.Printf("  %d transfers of %d MB: fct min %v max %v\n", done, mb, minFCT.Duration(), maxFCT.Duration())
	fmt.Printf("  layer: opened %d completed %d failed %d rerouted %d active %d\n",
		st.Opened, st.Completed, st.Failed, st.Rerouted, st.Active)
	fmt.Printf("  hybrid digest %016x\n", net.Hybrid().Digest())
	if st.Active != 0 || st.Failed > 0 || done != n {
		log.Fatalf("hybrid: wave did not complete cleanly (%d/%d done)", done, n)
	}
}

// runCollective exercises the collective workloads two ways: a real
// source-routed multicast broadcast over the deployed fabric (one frame in,
// switch-replicated fan-out), then the flow-level collective suite
// (broadcast, ring/tree allreduce, parameter server) on the max-min fair
// leaf-spine model under each routing policy.
func runCollective(net *core.Network, hosts []core.MAC, bytes float64) {
	fmt.Println("\ncollective workloads:")

	// 1. Packet-level broadcast: group the first few hosts, multicast a
	// probe, and let every member report delivery.
	size := len(hosts)
	if size > 8 {
		size = 8
	}
	members := append([]core.MAC(nil), hosts[:size]...)
	// Group IDs 1..N belong to the -mcast chaos soak; stay clear of them.
	const group = 1000
	if err := net.CreateMcastGroup(group, members); err != nil {
		log.Fatalf("collective: create group: %v", err)
	}
	net.Run() // drain the group announcement
	delivered := 0
	if err := net.MulticastProbe(members[0], group, func(core.MAC) { delivered++ }); err != nil {
		log.Fatalf("collective: multicast: %v", err)
	}
	net.Run()
	tree, err := net.Ctrl.Mcast().LookupTree(mcast.GroupID(group), members[0])
	if err != nil {
		log.Fatalf("collective: tree lookup: %v", err)
	}
	fmt.Printf("  multicast broadcast: %d/%d members delivered, tree depth %d, fanout %d, %dB wire tag\n",
		delivered, len(members)-1, tree.Depth, len(tree.Hops), len(tree.Wire()))
	if delivered != len(members)-1 {
		log.Fatalf("collective: broadcast delivered %d of %d members", delivered, len(members)-1)
	}

	// 2. Flow-level suite on the paper's testbed shape (25 workers).
	const spines, leaves, perLeaf = 2, 5, 5
	workers := leaves * perLeaf
	type policy struct {
		name  string
		route func(ls *workload.LeafSpineNet) workload.RouteFunc
	}
	policies := []policy{
		{"flowlet", func(ls *workload.LeafSpineNet) workload.RouteFunc { return ls.FlowletPolicy() }},
		{"single-path", func(ls *workload.LeafSpineNet) workload.RouteFunc { return ls.SinglePathPolicy() }},
	}
	for _, job := range workload.CollectiveSuite(workers, bytes) {
		line := fmt.Sprintf("  %-16s", job.Name)
		for _, p := range policies {
			ls := workload.NewLeafSpine(spines, leaves, perLeaf, 10e9, 1e9)
			d, err := workload.RunJob(job, ls.Net, p.route(ls))
			if err != nil {
				log.Fatalf("collective: %s under %s: %v", job.Name, p.name, err)
			}
			line += fmt.Sprintf("  %s %6.3fs", p.name, d)
		}
		fmt.Println(line)
	}
}

// runFederated stands up `count` copies of the chosen topology as one
// metro/WAN federation — each fabric on its own shard, border gateways
// wired over WAN links — then measures intra- vs cross-fabric RTTs and
// optionally runs the WAN chaos battery (link cuts + gateway crashes with
// never-widen and post-heal audits). Same seed, same chaos digest.
func runFederated(kind string, k, n, count int, wanDelay time.Duration, gateways, pings int,
	tele *telemetry.Config, chaosOn bool, chaosSeed int64, chaosEvts int) {
	specs := make([]core.FabricSpec, count)
	for i := range specs {
		t, _, err := buildTopology(kind, k, n)
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = core.FabricSpec{Name: fmt.Sprintf("fab%d", i), Topo: t}
	}
	cfg := core.DefaultFederationConfig(chaosSeed)
	cfg.WAN.PropDelay = sim.FromDuration(wanDelay)
	cfg.Gateways = gateways
	cfg.Telemetry = tele
	fed, err := core.Federate(cfg, specs...)
	if err != nil {
		log.Fatal(err)
	}
	g := fed.SimGroup()
	fmt.Printf("federation: %d fabrics (%d switches, %d hosts each), %d WAN links @ %v, lookahead %v\n",
		fed.NumFabrics(), specs[0].Topo.NumSwitches(), specs[0].Topo.NumHosts(),
		len(fed.WANLinks()), wanDelay, g.Lookahead().Duration())

	for fab := 0; fab < count; fab++ {
		next := (fab + 1) % count
		src := fed.Hosts(fab)[0]
		local := fed.Hosts(fab)[1]
		remote := fed.Hosts(next)[0]
		for i := 0; i < pings; i++ {
			irtt, err := fed.PingSync(src, local)
			if err != nil {
				log.Fatalf("intra ping %s: %v", fed.Name(fab), err)
			}
			xrtt, err := fed.PingSync(src, remote)
			if err != nil {
				log.Fatalf("cross ping %s -> %s: %v", fed.Name(fab), fed.Name(next), err)
			}
			fmt.Printf("ping %s: intra %v, cross to %s %v\n",
				fed.Name(fab), irtt.Duration(), fed.Name(next), xrtt.Duration())
		}
	}
	st := fed.Regional().Stats()
	fmt.Printf("regional resolver: %d hits, %d misses, %d invalidated, %d refused\n",
		st.Hits, st.Misses, st.Invalidated, st.Refused)

	if chaosOn {
		ccfg := chaos.DefaultFederationConfig(chaosSeed)
		ccfg.Events = chaosEvts
		fmt.Printf("\nwan chaos: seed %d, %d events (link cuts + gateway crashes)\n", chaosSeed, chaosEvts)
		rep, err := chaos.RunFederation(fed, ccfg)
		if err != nil {
			log.Fatalf("wan chaos: %v", err)
		}
		for _, e := range rep.Trace {
			fmt.Printf("  %v\n", e)
		}
		fmt.Printf("wan chaos: event digest %016x\n", rep.Digest())
		if rep.Ok() {
			fmt.Printf("wan chaos: all invariants held (%d ping retries during re-convergence)\n", rep.PingRetries)
		} else {
			for _, v := range rep.Violations {
				fmt.Printf("wan chaos: INVARIANT VIOLATED — %v\n", v)
			}
			os.Exit(1)
		}
	}

	if tele != nil {
		hub := fed.Hub()
		fmt.Printf("\nfederated telemetry: %d flagged (%d WAN), raised %d, cleared %d, gateways down %d\n",
			hub.Flagged(), hub.WANFlaggedCount(), hub.Raised(), hub.Cleared(), hub.GatewaysDown())
	}

	par, solo := fed.Windows()
	fmt.Printf("\nvirtual time elapsed: %v, windows: %d parallel, %d solo\n",
		fed.Now().Duration(), par, solo)
}
