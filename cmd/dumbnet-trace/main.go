// Command dumbnet-trace summarizes a flight-recorder dump written by
// dumbnet-emu -trace. The input is Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing); this tool reads the lossless record payload
// back out and renders the human-readable views:
//
//	dumbnet-trace out.json              # summary + recovery timelines
//	dumbnet-trace -full out.json        # full chronological event timeline
//	dumbnet-trace -recovery out.json    # recovery timelines only
//	dumbnet-trace -top out.json         # offline telemetry: talkers, hot links, drop causes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"dumbnet/internal/sim"
	"dumbnet/internal/telemetry"
	"dumbnet/internal/trace"
)

func main() {
	var (
		full     = flag.Bool("full", false, "print every record as a chronological timeline")
		recovery = flag.Bool("recovery", false, "print only the reconstructed recovery timelines")
		top      = flag.Bool("top", false, "replay the dump through the streaming telemetry consumer: top talkers, hottest links, drop-cause breakdown")
		topK     = flag.Int("top-k", 10, "heavy-hitter sketch size for -top")
		topWin   = flag.Duration("top-window", 0, "telemetry window for -top (0 = package default)")
	)
	flag.Parse()
	log.SetFlags(0)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dumbnet-trace [-full|-recovery|-top] <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	recs, err := trace.ReadChrome(data)
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}

	if *full {
		if err := trace.WriteTimeline(os.Stdout, recs); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *top {
		printTop(flag.Arg(0), recs, *topK, *topWin)
		return
	}

	timelines := trace.ExtractTimelines(recs)
	if !*recovery {
		byKind := map[trace.Kind]int{}
		for i := range recs {
			byKind[recs[i].Kind]++
		}
		fmt.Printf("%s: %d records\n", flag.Arg(0), len(recs))
		for _, k := range []trace.Kind{trace.KindHop, trace.KindDrop, trace.KindCtrl, trace.KindRecovery, trace.KindScenario} {
			if n := byKind[k]; n > 0 {
				fmt.Printf("  %-9v %d\n", k, n)
			}
		}
	}
	if len(timelines) == 0 {
		fmt.Println("no recovery timelines (no fail-link/crash-switch events in trace)")
		return
	}
	complete := 0
	for i := range timelines {
		if timelines[i].Complete() {
			complete++
		}
	}
	fmt.Printf("recovery timelines: %d/%d complete\n", complete, len(timelines))
	for i := range timelines {
		fmt.Print(timelines[i].String())
	}
}

// printTop replays the dump through the same streaming consumer the online
// telemetry loop runs, then renders the merged snapshot: the offline twin
// of `dumbnet-emu -telemetry`.
func printTop(name string, recs []trace.Record, k int, win time.Duration) {
	cfg := telemetry.DefaultConfig()
	cfg.TopK = k
	if win > 0 {
		cfg.Window = sim.FromDuration(win)
	}
	s := telemetry.Offline(recs, cfg)
	fmt.Printf("%s: %d records replayed over %d windows of %v\n",
		name, len(recs), s.Windows, cfg.Window.Duration())
	fmt.Printf("  frames %d, drops %d, flags raised %d / cleared %d, heal-SLO breaches %d\n",
		s.Frames, s.Drops, s.Raised, s.Cleared, s.HealBreaches)

	if len(s.TopFlows) > 0 {
		fmt.Printf("\ntop talkers (space-saving sketch, k=%d):\n", k)
		for _, f := range s.TopFlows {
			bound := ""
			if f.Err > 0 {
				bound = fmt.Sprintf(" (overcount <= %d)", f.Err)
			}
			fmt.Printf("  %-44s %8d frames%s\n", f.Flow, f.Count, bound)
		}
	}

	if len(s.Links) > 0 {
		links := append([]telemetry.LinkStat(nil), s.Links...)
		sort.SliceStable(links, func(i, j int) bool { return links[i].Frames > links[j].Frames })
		if len(links) > k {
			links = links[:k]
		}
		fmt.Printf("\nhottest links (top %d of %d):\n", len(links), len(s.Links))
		for _, l := range links {
			flags := ""
			if l.Reason != "" {
				flags = "  [" + l.Reason + "]"
			}
			fmt.Printf("  %-16s %8d frames, %d drops%s\n", l.Link, l.Frames, l.Drops, flags)
		}
	}

	if len(s.DropCauses) > 0 {
		causes := make([]string, 0, len(s.DropCauses))
		for c := range s.DropCauses {
			causes = append(causes, c)
		}
		sort.Slice(causes, func(i, j int) bool {
			if s.DropCauses[causes[i]] != s.DropCauses[causes[j]] {
				return s.DropCauses[causes[i]] > s.DropCauses[causes[j]]
			}
			return causes[i] < causes[j]
		})
		fmt.Println("\ndrop causes:")
		for _, c := range causes {
			fmt.Printf("  %-16s %d\n", c, s.DropCauses[c])
		}
	}

	printHist := func(label string, h telemetry.HistStat) {
		if h.Count == 0 {
			return
		}
		fmt.Printf("  %-14s n=%d mean=%v p50=%v p99=%v max=%v\n", label, h.Count,
			time.Duration(h.Mean), time.Duration(h.P50), time.Duration(h.P99), time.Duration(h.Max))
	}
	if s.Recovery.Count > 0 || s.CtrlLatency.Count > 0 {
		fmt.Println("\nlatency histograms:")
		printHist("recovery", s.Recovery)
		printHist("ctrl-path", s.CtrlLatency)
	}
}
