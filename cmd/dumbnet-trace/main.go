// Command dumbnet-trace summarizes a flight-recorder dump written by
// dumbnet-emu -trace. The input is Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing); this tool reads the lossless record payload
// back out and renders the human-readable views:
//
//	dumbnet-trace out.json              # summary + recovery timelines
//	dumbnet-trace -full out.json        # full chronological event timeline
//	dumbnet-trace -recovery out.json    # recovery timelines only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dumbnet/internal/trace"
)

func main() {
	var (
		full     = flag.Bool("full", false, "print every record as a chronological timeline")
		recovery = flag.Bool("recovery", false, "print only the reconstructed recovery timelines")
	)
	flag.Parse()
	log.SetFlags(0)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dumbnet-trace [-full|-recovery] <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	recs, err := trace.ReadChrome(data)
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}

	if *full {
		if err := trace.WriteTimeline(os.Stdout, recs); err != nil {
			log.Fatal(err)
		}
		return
	}

	timelines := trace.ExtractTimelines(recs)
	if !*recovery {
		byKind := map[trace.Kind]int{}
		for i := range recs {
			byKind[recs[i].Kind]++
		}
		fmt.Printf("%s: %d records\n", flag.Arg(0), len(recs))
		for _, k := range []trace.Kind{trace.KindHop, trace.KindDrop, trace.KindCtrl, trace.KindRecovery, trace.KindScenario} {
			if n := byKind[k]; n > 0 {
				fmt.Printf("  %-9v %d\n", k, n)
			}
		}
	}
	if len(timelines) == 0 {
		fmt.Println("no recovery timelines (no fail-link/crash-switch events in trace)")
		return
	}
	complete := 0
	for i := range timelines {
		if timelines[i].Complete() {
			complete++
		}
	}
	fmt.Printf("recovery timelines: %d/%d complete\n", complete, len(timelines))
	for i := range timelines {
		fmt.Print(timelines[i].String())
	}
}
