// Command dumbnet-locreport prints the repository's line-of-code breakdown
// by module — the Table 1 analogue for this reproduction.
//
//	dumbnet-locreport [-root path] [-tests]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dumbnet/internal/metrics"
)

func countDir(dir string, includeTests bool) (code, tests int, err error) {
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		n := 0
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			n++
		}
		if strings.HasSuffix(path, "_test.go") {
			tests += n
		} else {
			code += n
		}
		return sc.Err()
	})
	return code, tests, err
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	groups := []struct{ name, dir string }{
		{"packet format", "internal/packet"},
		{"topology & path algorithms", "internal/topo"},
		{"event simulator", "internal/sim"},
		{"dumb switch + baselines", "internal/dswitch"},
		{"fabric assembly", "internal/fabric"},
		{"consensus (controller replication)", "internal/consensus"},
		{"controller (discovery, paths, patches)", "internal/controller"},
		{"host agent (datapath, cache, TE)", "internal/host"},
		{"spanning-tree baseline", "internal/stp"},
		{"flow-level simulator", "internal/flowsim"},
		{"workloads (HiBench models)", "internal/workload"},
		{"FPGA resource model", "internal/fpgamodel"},
		{"virtualization extension", "internal/vnet"},
		{"layer-3 router extension", "internal/router"},
		{"pHost transport extension", "internal/phost"},
		{"core API", "internal/core"},
		{"experiments (tables & figures)", "internal/experiments"},
		{"metrics", "internal/metrics"},
		{"test harness", "internal/testnet"},
		{"commands", "cmd"},
		{"examples", "examples"},
	}
	tbl := metrics.NewTable("Code breakdown (Go lines)", "module", "code", "tests")
	totalCode, totalTests := 0, 0
	for _, g := range groups {
		dir := filepath.Join(*root, g.dir)
		if _, err := os.Stat(dir); err != nil {
			continue
		}
		c, t, err := countDir(dir, true)
		if err != nil {
			log.Fatal(err)
		}
		totalCode += c
		totalTests += t
		tbl.AddRow(g.name, c, t)
	}
	tbl.AddRow("TOTAL", totalCode, totalTests)
	fmt.Println(tbl.String())

	// Paper comparison.
	paper := metrics.NewTable("Paper's Table 1 (C/C++ lines) for reference",
		"module", "paper LoC")
	rows := map[string]int{
		"Agent": 5000, "Discovery": 600, "Maintenance": 200,
		"Graph": 1700, "Total": 7500, "+Flowlet": 100, "+Router": 100,
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		paper.AddRow(k, rows[k])
	}
	fmt.Println(paper.String())
}
