// Command dumbnet-bench regenerates the tables and figures of the DumbNet
// paper's evaluation (§7). Run one experiment by name or all of them:
//
//	dumbnet-bench -list
//	dumbnet-bench -run fig8a
//	dumbnet-bench -run all -quick
//
// Each experiment prints the paper's layout plus PASS/FAIL shape checks for
// the claims it reproduces.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"dumbnet/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func(quick bool) (*experiments.Result, error)
}

func registry(repoRoot string) []experiment {
	return []experiment{
		{"table1", "implementation complexity (LoC breakdown)", func(bool) (*experiments.Result, error) {
			return experiments.Table1(repoRoot)
		}},
		{"table2", "kernel-module function latencies", func(quick bool) (*experiments.Result, error) {
			sz := experiments.DefaultTable2Sizes()
			if quick {
				sz.FatTreeK = 16
				sz.Reps = 200
			}
			return experiments.Table2(sz)
		}},
		{"fig7", "FPGA resource utilization vs ports", func(bool) (*experiments.Result, error) {
			return experiments.Fig7(), nil
		}},
		{"fig8a", "discovery time vs network size", func(quick bool) (*experiments.Result, error) {
			return experiments.Fig8a(quick)
		}},
		{"fig8b", "discovery time vs port density", func(quick bool) (*experiments.Result, error) {
			return experiments.Fig8b(quick)
		}},
		{"fig9", "single-host throughput", func(quick bool) (*experiments.Result, error) {
			reps := 50000
			if quick {
				reps = 5000
			}
			return experiments.Fig9(reps)
		}},
		{"fig10", "round-trip latency CDF", func(quick bool) (*experiments.Result, error) {
			cfg := experiments.DefaultFig10Config()
			if quick {
				cfg.PingsPerPair = 20
				cfg.Pairs = 60
			}
			return experiments.Fig10(cfg)
		}},
		{"fig11a", "failure notification delays", func(bool) (*experiments.Result, error) {
			return experiments.Fig11a(experiments.DefaultFig11aConfig())
		}},
		{"fig11b", "failover vs spanning tree", func(bool) (*experiments.Result, error) {
			return experiments.Fig11b(experiments.DefaultFig11bConfig())
		}},
		{"fig12", "path graph size vs ε", func(quick bool) (*experiments.Result, error) {
			if quick {
				return experiments.Fig12(6, 2, 1)
			}
			return experiments.Fig12(10, 5, 1)
		}},
		{"fig13", "HiBench macro-benchmark", func(bool) (*experiments.Result, error) {
			return experiments.Fig13(experiments.DefaultFig13Config())
		}},
		{"aggregate", "aggregate leaf-to-leaf throughput", func(bool) (*experiments.Result, error) {
			return experiments.AggregateLeafThroughput()
		}},
		{"testbed-discovery", "testbed discovery time", func(bool) (*experiments.Result, error) {
			return experiments.TestbedDiscovery()
		}},
		{"ablation-pathgraph", "path-graph vs k-shortest caching", func(quick bool) (*experiments.Result, error) {
			trials := 50
			if quick {
				trials = 15
			}
			return experiments.AblationPathGraph(trials, 1)
		}},
		{"ablation-flowlet", "flowlet timeout sweep", func(bool) (*experiments.Result, error) {
			return experiments.AblationFlowletTimeout()
		}},
		{"ablation-hoplimit", "failure broadcast hop-limit sweep", func(bool) (*experiments.Result, error) {
			return experiments.AblationHopLimit()
		}},
		{"ablation-suppression", "alarm suppression window sweep", func(bool) (*experiments.Result, error) {
			return experiments.AblationSuppression()
		}},
		{"ablation-ecn", "ECN congestion-avoiding rerouting", func(bool) (*experiments.Result, error) {
			return experiments.AblationECN()
		}},
		{"ablation-phost", "pHost receiver-driven transport under incast", func(bool) (*experiments.Result, error) {
			return experiments.AblationPHostIncast()
		}},
		{"storage", "host cache storage overhead (§7.3)", func(quick bool) (*experiments.Result, error) {
			if quick {
				return experiments.StorageOverhead(8, 40, 1)
			}
			return experiments.StorageOverhead(32, 200, 1)
		}},
		{"fct", "flow completion times under realistic traffic", func(quick bool) (*experiments.Result, error) {
			horizon := 1.0
			if quick {
				horizon = 0.5
			}
			return experiments.FlowCompletionTimes(0.5, horizon, nil, 1)
		}},
	}
}

func main() {
	var (
		runName     = flag.String("run", "all", "experiment to run (or 'all')")
		quick       = flag.Bool("quick", false, "smaller sweeps for fast runs")
		list        = flag.Bool("list", false, "list experiments")
		root        = flag.String("repo", ".", "repository root (for table1)")
		benchJSON   = flag.String("bench-json", "", "run the microbenchmark suite and write results to this JSON file")
		benchLabel  = flag.String("bench-label", "current", "label recorded for the bench run in -bench-json output")
		benchAppend = flag.Bool("bench-append", false, "append the bench run to an existing -bench-json file instead of overwriting")
		benchFilter = flag.String("bench-filter", "", "only run benchmarks whose name contains this substring (for -bench-json / -bench-gate)")
		benchGate   = flag.String("bench-gate", "", "run the suite and fail if ns/op regresses beyond -bench-gate-pct or allocs/op grows vs this baseline JSON")
		benchGatePc = flag.Float64("bench-gate-pct", 15, "ns/op regression tolerance (percent) for -bench-gate")
		hybridK     = flag.Int("hybrid-scale", 0, "run the HiBench suite on a k-ary fat-tree (k/2 hosts per edge) through the hybrid fluid layer and record events/sec + peak RSS; combine with -bench-json/-bench-append/-bench-label")
		hybridWidth = flag.Int("hybrid-width", 8, "shuffle width (peers per worker) for -hybrid-scale")
		hybridGB    = flag.Float64("hybrid-gb", 0.5, "per-job input size in GB for -hybrid-scale")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
		fmt.Printf("pprof: serving on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *hybridK > 0 {
		if err := runHybridScaleJSON(*benchJSON, *benchLabel, *benchAppend, *hybridK, *hybridWidth, *hybridGB); err != nil {
			fmt.Fprintf(os.Stderr, "hybrid-scale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchGate != "" {
		if err := gateBench(*benchGate, *benchFilter, *benchGatePc); err != nil {
			fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchLabel, *benchAppend, *benchFilter); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	exps := registry(*root)
	if *list {
		names := make([]string, 0, len(exps))
		for _, e := range exps {
			names = append(names, fmt.Sprintf("  %-18s %s", e.name, e.desc))
		}
		sort.Strings(names)
		fmt.Println("experiments:")
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	failed := 0
	ran := 0
	for _, e := range exps {
		if *runName != "all" && e.name != *runName {
			continue
		}
		ran++
		res, err := e.run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.name, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		if !res.AllPass() {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *runName)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) had failing checks\n", failed)
		os.Exit(1)
	}
}
