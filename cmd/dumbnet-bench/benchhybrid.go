package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"dumbnet/internal/core"
	"dumbnet/internal/flowsim"
	"dumbnet/internal/hybrid"
	"dumbnet/internal/topo"
	"dumbnet/internal/workload"
)

// Hybrid-mode benchmarks: the fluid-flow engine that reaches k=32/k=64
// fat-trees, plus the memory-footprint accounting every bench run records.

// heapSysBytes reports the Go heap's OS footprint.
func heapSysBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapSys)
}

// peakRSSBytes reads the process high-water RSS (VmHWM) from
// /proc/self/status; 0 where the OS does not expose it.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				return kb << 10
			}
		}
	}
	return 0
}

// hybridBenches extends the microbenchmark suite with the fluid layer's
// hot paths: the incremental max-min recompute under flow churn, and an
// end-to-end k=8 fat-tree transfer wave through route reservation, fluid
// advance and completion events.
func hybridBenches() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"FlowsimChurn512", func(b *testing.B) {
			// 8 spines x 16 leaves, 512 long-lived flows; each op adds one
			// short flow and runs it to completion — the incremental
			// recompute re-waterfills only the affected bottleneck set.
			ls := workload.NewLeafSpine(8, 16, 4, 10e9, 40e9)
			s := flowsim.NewSimulator(ls.Net)
			for i := 0; i < 512; i++ {
				src := i % ls.Hosts()
				dst := (i*7 + 1) % ls.Hosts()
				if ls.Leaf(src) == ls.Leaf(dst) {
					dst = (dst + ls.HostsPerLeaf) % ls.Hosts()
				}
				s.Add(&flowsim.Flow{ID: i + 1, Path: ls.PathVia(src, dst, i%8), Size: 1e18})
			}
			s.RunUntil(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := 1000 + i
				src := i % ls.Hosts()
				dst := (i*11 + 3) % ls.Hosts()
				if ls.Leaf(src) == ls.Leaf(dst) {
					dst = (dst + ls.HostsPerLeaf) % ls.Hosts()
				}
				f := &flowsim.Flow{ID: id, Path: ls.PathVia(src, dst, i%8), Size: 1e6, Start: s.Now()}
				s.Add(f)
				for !f.Finished {
					t, ok := s.NextEventTime()
					if !ok {
						b.Fatal("flow never finished")
					}
					s.RunUntil(t)
				}
			}
		}},
		{"HybridK8Wave", func(b *testing.B) {
			ft, err := topo.FatTree(8, 1, 0)
			if err != nil {
				b.Fatal(err)
			}
			n, err := core.New(ft, core.WithSeed(1), core.WithHybridFlows(hybrid.Config{}))
			if err != nil {
				b.Fatal(err)
			}
			if err := n.Bootstrap(); err != nil {
				b.Fatal(err)
			}
			hosts := n.Hosts()
			// Warm wave so steady state (path tables hot) is measured.
			wave := func() {
				for i := range hosts {
					if _, err := n.OpenFlow(hosts[i], hosts[(i+11)%len(hosts)], 1<<20, nil); err != nil {
						b.Fatal(err)
					}
				}
				n.Run()
			}
			wave()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wave()
			}
			b.StopTimer()
			if st := n.Hybrid().Stats(); st.Active != 0 || st.Failed > 0 {
				b.Fatalf("fluid layer not clean: %+v", st)
			}
		}},
	}
}

// runHybridScale deploys a k-ary fat-tree with k/2 hosts per edge switch
// (8192 hosts at k=32), runs the HiBench suite through the hybrid layer
// on one core, and returns a bench record carrying virtual duration,
// events/sec and the memory high-water marks.
func runHybridScale(k, width int, inputGB float64) (benchResult, error) {
	res := benchResult{Name: fmt.Sprintf("HybridScaleK%d", k)}
	ft, err := topo.FatTree(k, k/2, 0)
	if err != nil {
		return res, err
	}
	hostsN := len(ft.Hosts())
	fmt.Fprintf(os.Stderr, "hybrid-scale: k=%d fat-tree, %d hosts, %d switches, shuffle width %d, %.2f GB/job\n",
		k, hostsN, len(ft.SwitchIDs()), width, inputGB)
	n, err := core.New(ft, core.WithSeed(1), core.WithHybridFlows(hybrid.Config{}))
	if err != nil {
		return res, err
	}
	start := time.Now()
	if err := n.Bootstrap(); err != nil {
		return res, err
	}
	fmt.Fprintf(os.Stderr, "hybrid-scale: bootstrapped in %v\n", time.Since(start))

	c := &workload.Cluster{Layer: n.Hybrid()}
	for _, m := range n.Hosts() {
		c.Agents = append(c.Agents, n.Agent(m))
		c.MACs = append(c.MACs, m)
	}
	jobs := workload.HiBenchSuiteWidth(c.Workers(), width, inputGB)

	// Warm the path tables for every pair the shuffles will use, so the
	// measured phase exercises the simulation loop rather than first-touch
	// controller path computation, and stage starts admit their whole flow
	// batch on one engine tick.
	start = time.Now()
	for s := 0; s < c.Workers(); s++ {
		for i := 1; i <= width; i++ {
			if err := c.Agents[s].WarmUp(c.MACs[(s+i)%c.Workers()]); err != nil {
				return res, err
			}
		}
	}
	n.Run()
	fmt.Fprintf(os.Stderr, "hybrid-scale: warmed %d host pairs in %v\n", c.Workers()*width, time.Since(start))

	wall := time.Now()
	ev0 := n.Eng.Processed()
	durs, err := workload.RunJobsOnFabric(jobs, c)
	if err != nil {
		return res, err
	}
	wallSec := time.Since(wall).Seconds()
	events := n.Eng.Processed() - ev0
	st := n.Hybrid().Stats()
	for i, j := range jobs {
		fmt.Fprintf(os.Stderr, "hybrid-scale: %-12s %8.3fs virtual\n", j.Name, float64(durs[i])/1e9)
	}
	fmt.Fprintf(os.Stderr, "hybrid-scale: %d flows completed, %d engine events in %.1fs wall (%.0f events/sec), digest %016x\n",
		st.Completed, events, wallSec, float64(events)/wallSec, n.Hybrid().Digest())
	settles, reRates := n.Hybrid().FluidDebug()
	fmt.Fprintf(os.Stderr, "hybrid-scale: %d settle passes, %d flow re-rates\n", settles, reRates)

	res.Iterations = 1
	res.NsPerOp = float64(time.Since(wall).Nanoseconds())
	res.EventsPerSec = float64(events) / wallSec
	res.FlowsCompleted = int64(st.Completed)
	res.HeapSysBytes = heapSysBytes()
	res.PeakRSSBytes = peakRSSBytes()
	return res, nil
}

// runHybridScaleJSON records a hybrid scale run in BENCH_results.json
// format (appending when the file exists and appendRun is set).
func runHybridScaleJSON(path, label string, appendRun bool, k, width int, inputGB float64) error {
	res, err := runHybridScale(k, width, inputGB)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hybrid-scale: peak RSS %.1f MiB, heap sys %.1f MiB\n",
		float64(res.PeakRSSBytes)/(1<<20), float64(res.HeapSysBytes)/(1<<20))
	if path == "" {
		return nil
	}
	file := benchFile{Schema: benchSchema}
	if appendRun {
		if f, err := readBenchFile(path); err == nil {
			file = f
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	run := benchRun{Label: label, Go: runtime.Version(), Benchmarks: []benchResult{res}}
	run.HeapSysBytes = res.HeapSysBytes
	run.PeakRSSBytes = res.PeakRSSBytes
	file.Runs = append(file.Runs, run)
	return writeBenchFile(path, file)
}
