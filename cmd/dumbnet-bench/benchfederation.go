package main

import (
	"testing"

	"dumbnet/internal/controller"
	"dumbnet/internal/core"
	"dumbnet/internal/sim"
	"dumbnet/internal/topo"
)

// Federation benchmarks. FedRegionalLookupWarm gates the regional route
// cache (a warm inter-fabric lookup must stay a 0-alloc map probe, like
// PathRequestWarm for the local plane). The FedWindowsWAN pair runs the
// identical two-fabric ping-pong workload with a 100µs vs 5ms WAN and
// records the conservative windows the shard group opened per virtual
// second — the WAN propagation delay IS the cross-shard lookahead, so the
// ms-scale interconnect must collapse the window (and barrier) count,
// which is the whole reason fabric-per-shard federation makes sharding
// pay. Read the two windows_per_virtual_sec values side by side in
// BENCH_results.json.

// fedWindowRates holds windows-per-virtual-second captured by the last
// run of each FedWindows bench, attached to the JSON record via
// benchExtras.
var fedWindowRates = map[string]float64{}

// benchExtras lets a benchmark attach metrics beyond what
// testing.Benchmark reports; runBenchSuite applies the hook by name.
var benchExtras = map[string]func(*benchResult){
	"FedWindowsWAN100us": func(r *benchResult) { r.WindowsPerVirtualSec = fedWindowRates["FedWindowsWAN100us"] },
	"FedWindowsWAN5ms":   func(r *benchResult) { r.WindowsPerVirtualSec = fedWindowRates["FedWindowsWAN5ms"] },
}

func federationBenches() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"FedRegionalLookupWarm", benchFedRegionalLookupWarm},
		{"FedWindowsWAN100us", func(b *testing.B) { benchFedWindows(b, "FedWindowsWAN100us", 100*sim.Microsecond) }},
		{"FedWindowsWAN5ms", func(b *testing.B) { benchFedWindows(b, "FedWindowsWAN5ms", 5*sim.Millisecond) }},
	}
}

// buildBenchFederation federates two k=4 fat-tree fabrics over the given
// WAN delay (2 gateway pairs, so 2 WAN links).
func buildBenchFederation(b *testing.B, wan sim.Time) *core.Federation {
	ta, err := topo.FatTree(4, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	tb, err := topo.FatTree(4, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultFederationConfig(1)
	cfg.WAN.PropDelay = wan
	fed, err := core.Federate(cfg,
		core.FabricSpec{Name: "west", Topo: ta},
		core.FabricSpec{Name: "east", Topo: tb},
	)
	if err != nil {
		b.Fatal(err)
	}
	return fed
}

func benchFedRegionalLookupWarm(b *testing.B) {
	fed := buildBenchFederation(b, 5*sim.Millisecond)
	defer fed.SimGroup().Close()
	q := controller.RouteQuery{
		Src:   fed.Hosts(0)[0],
		Dst:   fed.Hosts(1)[0],
		Scope: controller.ScopeFabric,
	}
	if _, err := fed.Resolve(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Resolve(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFedWindows keeps four cross-fabric ping-pong conversations alive
// (every delivery echoes the payload back over the WAN) and measures
// draining 20ms of virtual time per op, capturing how many conservative
// windows that took.
func benchFedWindows(b *testing.B, name string, wan sim.Time) {
	const virtualPerOp = 20 * sim.Millisecond
	fed := buildBenchFederation(b, wan)
	defer fed.SimGroup().Close()
	payload := make([]byte, 256)
	for i := 0; i < 4; i++ {
		src := fed.Hosts(0)[i]
		dst := fed.Hosts(1)[i]
		if err := fed.OnReceive(dst, func(s core.MAC, p []byte) { _ = fed.Send(dst, s, p) }); err != nil {
			b.Fatal(err)
		}
		if err := fed.OnReceive(src, func(s core.MAC, p []byte) { _ = fed.Send(src, s, p) }); err != nil {
			b.Fatal(err)
		}
		if err := fed.Send(src, dst, payload); err != nil {
			b.Fatal(err)
		}
	}
	// Let routes warm and the first exchanges complete before timing.
	fed.RunFor(4 * wan)
	par0, solo0 := fed.Windows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fed.RunFor(virtualPerOp)
	}
	b.StopTimer()
	par1, solo1 := fed.Windows()
	windows := (par1 + solo1) - (par0 + solo0)
	virtualSec := float64(b.N) * float64(virtualPerOp) / float64(sim.Second)
	fedWindowRates[name] = float64(windows) / virtualSec
	if windows == 0 {
		b.Fatal("federated bench opened no windows")
	}
}
