package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"dumbnet/internal/controller"
	"dumbnet/internal/dswitch"
	"dumbnet/internal/experiments"
	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/telemetry"
	"dumbnet/internal/topo"
	"dumbnet/internal/trace"
	"dumbnet/internal/vnet"
)

// Machine-readable benchmark emission (BENCH_results.json). Each invocation
// with -bench-json runs the datapath microbenchmarks plus quick Fig 9/10
// sweeps through testing.Benchmark and records ns/op, B/op and allocs/op
// under a labeled run, so successive runs (before/after an optimization, or
// across machines) can be diffed with jq or the comparison recipe in
// EXPERIMENTS.md.

const benchSchema = "dumbnet-bench/v1"

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Hybrid scale runs additionally record simulation throughput and the
	// memory high-water marks of the run.
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`
	FlowsCompleted int64   `json:"flows_completed,omitempty"`
	HeapSysBytes   int64   `json:"heap_sys_bytes,omitempty"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes,omitempty"`
	// Federated window benches additionally record how many conservative
	// shard windows the group opened per virtual second (the WAN-lookahead
	// scaling evidence).
	WindowsPerVirtualSec float64 `json:"windows_per_virtual_sec,omitempty"`
}

type benchRun struct {
	Label string `json:"label"`
	Go    string `json:"go"`
	// Scheduler shape of the machine that produced the run: sharded-engine
	// speedup numbers are meaningless without knowing how many cores the
	// workers actually had (the 1-CPU-container caveat in EXPERIMENTS.md),
	// so both are recorded on every run and surface in any jq diff.
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Memory footprint at the end of the run: the Go heap's OS footprint
	// (runtime.ReadMemStats HeapSys) and the process high-water RSS where
	// the OS exposes it (/proc/self/status VmHWM on Linux, else 0).
	HeapSysBytes int64 `json:"heap_sys_bytes,omitempty"`
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

type benchFile struct {
	Schema string     `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// benchFrame is the canonical 1500-byte-class frame used across the
// microbenchmarks, matching the root-package bench suite.
func benchFrame() *packet.Frame {
	return &packet.Frame{
		Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2),
		Tags: packet.Path{2, 3, 5, 1}, InnerType: packet.EtherTypeIPv4,
		Payload: make([]byte, 1450),
	}
}

type benchSink struct{}

func (*benchSink) Receive(int, []byte) {}

// recycleSink returns every delivered frame to the buffer pool so a
// steady-state fork bench sees the pool it would see in the emulator.
type recycleSink struct{}

func (*recycleSink) Receive(_ int, frame []byte) { packet.PutBuffer(frame) }

// frameSink defeats dead-code elimination in the allocating decode bench.
var frameSink *packet.Frame

// shapeMisses counts experiment iterations whose shape checks missed while
// benchmarking (reported once at the end of the suite, not fatal).
var shapeMisses int

func warnShapeMiss(name string, res *experiments.Result) {
	if !res.AllPass() {
		shapeMisses++
		fmt.Fprintf(os.Stderr, "warning: %s shape check missed during bench iteration\n", name)
	}
}

// microBenches lists the recorded benchmarks. Fig 9/10 run their quick
// configurations; everything else is a hot-path primitive.
func microBenches() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"FrameEncode", func(b *testing.B) {
			f := benchFrame()
			buf := make([]byte, 1600)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.EncodeTo(buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"FrameDecode", func(b *testing.B) {
			buf, _ := benchFrame().Encode()
			var f packet.Frame
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := packet.DecodeFrom(&f, buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"FrameDecodeAlloc", func(b *testing.B) {
			buf, _ := benchFrame().Encode()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := packet.Decode(buf)
				if err != nil {
					b.Fatal(err)
				}
				frameSink = f // keep the allocation observable
			}
		}},
		{"SwitchPopTag", func(b *testing.B) {
			master, _ := benchFrame().Encode()
			buf := make([]byte, len(master))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, master)
				if _, _, err := packet.PopTag(buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"EngineAfterStep", func(b *testing.B) {
			e := sim.NewEngine(1)
			fn := func() {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.After(10, fn)
				e.Step()
			}
		}},
		{"EngineEventChurn", func(b *testing.B) {
			e := sim.NewEngine(1)
			fn := func() {}
			for i := 0; i < 64; i++ {
				e.After(sim.Time(i)*sim.Microsecond, fn)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.After(sim.Microsecond, fn)
				e.Step()
			}
		}},
		{"LinkForward", func(b *testing.B) {
			e := sim.NewEngine(1)
			a := &benchSink{}
			c := &benchSink{}
			l := sim.NewLink(e, a, 1, c, 1, sim.LinkConfig{PropDelay: sim.Microsecond, BandwidthBps: 10e9})
			frame := make([]byte, 1500)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.SendFrom(a, frame)
				e.Run()
			}
		}},
		// The traced/untraced pair quantifies flight-recorder overhead on
		// the switch forwarding path; TraceHopRecord isolates the ring
		// append itself.
		{"SwitchForwardUntraced", func(b *testing.B) {
			benchSwitchForward(b, nil)
		}},
		{"SwitchForwardTraced", func(b *testing.B) {
			benchSwitchForward(b, trace.NewRecorder(trace.DefaultConfig()))
		}},
		{"TraceHopRecord", func(b *testing.B) {
			rec := trace.NewRecorder(trace.DefaultConfig())
			buf, _ := benchFrame().Encode()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec.PacketHop(int64(i), 100, 1, 2, buf)
			}
		}},
		// The telemetry trio quantifies the streaming-analytics loop: the
		// ring publish path with a live tap attached (must match the
		// untapped TraceHopRecord at 0 allocs/op), the per-record consumer
		// ingest, and the windowed detector sweep at fat-tree k=16 fabric
		// scale (5120 directed link states).
		{"TelemetryPublish1Subscriber", func(b *testing.B) {
			rec := trace.NewRecorder(trace.DefaultConfig())
			tap := rec.Subscribe(1 << 12)
			buf, _ := benchFrame().Encode()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.PacketHop(int64(i), 100, 1, 2, buf)
				if tap.Len() == tap.Cap() {
					b.StopTimer()
					tap.Drain(func(*trace.Record) {})
					b.StartTimer()
				}
			}
		}},
		{"TelemetryIngestHop", func(b *testing.B) {
			c := telemetry.NewOfflineConsumer(telemetry.DefaultConfig())
			r := trace.Record{Kind: trace.KindHop, Sw: 3, Port: 5, Dur: 100,
				Src: packet.MACFromUint64(7), Dst: packet.MACFromUint64(9)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.At = int64(i)
				c.IngestRecord(&r)
			}
		}},
		{"TelemetryFlushK16", func(b *testing.B) {
			// A k=16 fat-tree has 320 switches with 16 fabric-facing
			// ports each; touch every directed link once so the detector
			// sweep walks the full state table.
			c := telemetry.NewOfflineConsumer(telemetry.DefaultConfig())
			r := trace.Record{Kind: trace.KindHop, Dur: 100,
				Src: packet.MACFromUint64(7), Dst: packet.MACFromUint64(9)}
			for sw := 1; sw <= 320; sw++ {
				for p := 1; p <= 16; p++ {
					r.Sw, r.Port = packet.SwitchID(sw), packet.Tag(p)
					c.IngestRecord(&r)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EndWindow()
			}
		}},
		// The path-request trio quantifies the route-service cache: a cold
		// lookup pays the full dense-kernel compute + marshal, a warm hit is
		// a map probe returning cached wire bytes (0 allocs), and post-patch
		// pays compute plus the dense-graph rebuild the mutation forced.
		{"PathRequestCold", func(b *testing.B) {
			svc, _, src, dst := benchRouteService(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc.Invalidate()
				if _, err := svc.LookupWire(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PathRequestWarm", func(b *testing.B) {
			svc, _, src, dst := benchRouteService(b)
			if _, err := svc.LookupWire(src, dst); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.LookupWire(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The tenant variant probes the per-tenant route cache: a warm hit
		// must match the untenanted warm path at 0 allocs/op even though it
		// also validates four freshness tokens against the vnet manager.
		{"TenantPathRequestWarm", func(b *testing.B) {
			tp, err := topo.FatTree(8, 2, 0)
			if err != nil {
				b.Fatal(err)
			}
			eng := sim.NewEngine(1)
			hosts := tp.Hosts()
			c := controller.New(eng, host.New(eng, hosts[0].Host, host.DefaultConfig()), controller.DefaultConfig())
			c.SetMaster(tp)
			m := vnet.NewManager(tp, topo.PathGraphOptions{}, 1)
			members := []packet.MAC{hosts[1].Host, hosts[2].Host, hosts[3].Host}
			if _, err := m.CreateTenant("bench", members); err != nil {
				b.Fatal(err)
			}
			c.SetVirtualization(vnet.ControllerAdapter{M: m})
			svc := c.Routes()
			if _, err := svc.LookupTenantWire("bench", members[0], members[2]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.LookupTenantWire("bench", members[0], members[2]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PathRequestPostPatch", func(b *testing.B) {
			svc, tp, src, dst := benchRouteService(b)
			sw := tp.Hosts()[2].Switch
			nb := tp.Neighbors(sw)[0]
			far, err := tp.PortToward(nb.Sw, sw)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tp.Disconnect(sw, nb.Port); err != nil {
					b.Fatal(err)
				}
				if err := tp.Connect(sw, nb.Port, nb.Sw, far); err != nil {
					b.Fatal(err)
				}
				if _, err := svc.LookupWire(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Sharded-engine suite: the EngineSharded pair isolates the window/
		// barrier protocol; the FatTreeK16 pair runs one end-to-end traffic
		// wave on 1 vs 8 shards (same virtual workload, so the ns/op ratio is
		// the parallel speedup on multi-core hosts).
		{"EngineSharded1", func(b *testing.B) { benchEngineSharded(b, 1) }},
		{"EngineSharded4", func(b *testing.B) { benchEngineSharded(b, 4) }},
		{"EngineSharded8", func(b *testing.B) { benchEngineSharded(b, 8) }},
		{"FatTreeK16Shards1", func(b *testing.B) { benchFatTreeK16(b, 1) }},
		{"FatTreeK16Shards8", func(b *testing.B) { benchFatTreeK16(b, 8) }},
		// The multicast pair covers both halves of the tentpole datapath:
		// McastFanout4 is one switch replicating a tagged frame to four
		// branches (pool-recycled, 0 allocs), McastTreeWarm the controller
		// serving a cached distribution tree (a map probe, 0 allocs).
		{"McastFanout4", func(b *testing.B) { benchMcastFanout(b, 4) }},
		{"McastTreeWarm", func(b *testing.B) {
			tp, err := topo.FatTree(8, 2, 0)
			if err != nil {
				b.Fatal(err)
			}
			eng := sim.NewEngine(1)
			hosts := tp.Hosts()
			c := controller.New(eng, host.New(eng, hosts[0].Host, host.DefaultConfig()), controller.DefaultConfig())
			c.SetMaster(tp)
			svc := c.Mcast()
			members := []packet.MAC{hosts[1].Host, hosts[7].Host, hosts[23].Host, hosts[41].Host}
			if err := svc.CreateGroup(1, members); err != nil {
				b.Fatal(err)
			}
			if _, err := svc.LookupTreeWire(1, members[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.LookupTreeWire(1, members[0]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"KShortestPathsK8", func(b *testing.B) {
			tp, err := topo.FatTree(6, 1, 0)
			if err != nil {
				b.Fatal(err)
			}
			hosts := tp.Hosts()
			s, d := hosts[0].Switch, hosts[len(hosts)-1].Switch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topo.KShortestPaths(tp, s, d, 8); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The Fig 9/10 benches record cost only. Their shape checks include
		// wall-clock-sensitive comparisons that get noisy over hundreds of
		// sustained bench iterations, so misses are warned, not fatal; claim
		// verification is the job of `-run fig9` and the test suite.
		{"Fig9Throughput", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig9(5000)
				if err != nil {
					b.Fatal(err)
				}
				warnShapeMiss("fig9", res)
			}
		}},
		{"Fig10LatencyCDF", func(b *testing.B) {
			cfg := experiments.DefaultFig10Config()
			cfg.PingsPerPair = 20
			cfg.Pairs = 40
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig10(cfg)
				if err != nil {
					b.Fatal(err)
				}
				warnShapeMiss("fig10", res)
			}
		}},
	}
}

// allBenches is the full recorded suite: the datapath microbenchmarks
// plus the hybrid fluid-layer benchmarks.
func allBenches() []struct {
	name string
	fn   func(b *testing.B)
} {
	return append(append(microBenches(), hybridBenches()...), federationBenches()...)
}

// benchRouteService builds a standalone controller over a k=8 fat-tree
// master view (80 switches, 64 hosts) and hands back its route service plus
// a sample host pair — no fabric attached, route-service state only.
func benchRouteService(b *testing.B) (*controller.RouteService, *topo.Topology, packet.MAC, packet.MAC) {
	tp, err := topo.FatTree(8, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(1)
	hosts := tp.Hosts()
	c := controller.New(eng, host.New(eng, hosts[0].Host, host.DefaultConfig()), controller.DefaultConfig())
	c.SetMaster(tp)
	return c.Routes(), tp, hosts[1].Host, hosts[len(hosts)-1].Host
}

// benchMcastFanout measures one multicast switch hop: a tagged frame
// arrives and the switch forks it to `fanout` branch ports, recycling the
// parent buffer into the frame pool.
func benchMcastFanout(b *testing.B, fanout int) {
	e := sim.NewEngine(1)
	sw := dswitch.New(e, 1, fanout+1, dswitch.DefaultConfig())
	src := &recycleSink{}
	lcfg := sim.LinkConfig{PropDelay: 500 * sim.Nanosecond, BandwidthBps: 10e9}
	up := sim.NewLink(e, src, 1, sw, 1, lcfg)
	sw.AttachLink(1, up)
	var hops []packet.TreeHop
	for i := 0; i < fanout; i++ {
		port := i + 2
		sw.AttachLink(port, sim.NewLink(e, sw, port, &recycleSink{}, 1, lcfg))
		hops = append(hops, packet.TreeHop{Port: packet.Tag(port)})
	}
	tree, err := packet.EncodeTree(hops)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	master := make([]byte, packet.EncodedLenMcast(len(tree), len(payload)))
	if _, err := packet.EncodeMcastTo(master, packet.McastMAC(7), packet.MACFromUint64(1), 0, tree, packet.EtherTypeIPv4, payload); err != nil {
		b.Fatal(err)
	}
	send := func() {
		buf := packet.GetBuffer(len(master))
		copy(buf, master)
		up.SendFrom(src, buf)
		e.Run()
	}
	send() // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
}

// benchSwitchForward measures one switch hop end to end — host link in,
// tag pop, switch link out — with or without a flight recorder attached.
func benchSwitchForward(b *testing.B, rec *trace.Recorder) {
	e := sim.NewEngine(1)
	if rec != nil {
		e.SetTracer(rec)
	}
	sw := dswitch.New(e, 1, 4, dswitch.DefaultConfig())
	src, dst := &benchSink{}, &benchSink{}
	lcfg := sim.LinkConfig{PropDelay: 500 * sim.Nanosecond, BandwidthBps: 10e9}
	up := sim.NewLink(e, src, 1, sw, 1, lcfg)
	sw.AttachLink(1, up)
	down := sim.NewLink(e, sw, 2, dst, 1, lcfg)
	sw.AttachLink(2, down)
	f := benchFrame()
	f.Tags = packet.Path{2}
	master, err := f.Encode()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(master))
	// Warm the event pools so steady state is measured.
	copy(buf, master)
	up.SendFrom(src, buf)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, master)
		up.SendFrom(src, buf)
		e.Run()
	}
}

// runBenchSuite executes the bench suite (optionally filtered by a substring
// of the benchmark name) and returns the labeled run.
func runBenchSuite(label, filter string) (benchRun, error) {
	run := benchRun{
		Label:      label,
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, mb := range allBenches() {
		if filter != "" && !strings.Contains(mb.name, filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "bench %-18s ", mb.name)
		r := testing.Benchmark(mb.fn)
		res := benchResult{
			Name:        mb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if extra, ok := benchExtras[mb.name]; ok {
			extra(&res)
		}
		fmt.Fprintf(os.Stderr, "%12.2f ns/op %8d B/op %6d allocs/op (%d iters)\n",
			res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
		run.Benchmarks = append(run.Benchmarks, res)
	}
	if len(run.Benchmarks) == 0 {
		return run, fmt.Errorf("no benchmarks match filter %q", filter)
	}
	if shapeMisses > 0 {
		fmt.Fprintf(os.Stderr, "note: %d bench iteration(s) missed experiment shape checks (timing noise under load; verify with -run)\n", shapeMisses)
	}
	run.HeapSysBytes = heapSysBytes()
	run.PeakRSSBytes = peakRSSBytes()
	return run, nil
}

// readBenchFile loads and validates a BENCH_results.json-format file.
func readBenchFile(path string) (benchFile, error) {
	var file benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return file, err
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return file, fmt.Errorf("bench-json: %s is not valid: %w", path, err)
	}
	if file.Schema != benchSchema {
		return file, fmt.Errorf("bench-json: %s has schema %q, want %q", path, file.Schema, benchSchema)
	}
	return file, nil
}

// runBenchJSON executes the bench suite and writes (or appends to) path.
func runBenchJSON(path, label string, appendRun bool, filter string) error {
	file := benchFile{Schema: benchSchema}
	if appendRun {
		if f, err := readBenchFile(path); err == nil {
			file = f
		} else if !os.IsNotExist(err) {
			return err
		}
	}

	run, err := runBenchSuite(label, filter)
	if err != nil {
		return err
	}
	file.Runs = append(file.Runs, run)
	return writeBenchFile(path, file)
}

// writeBenchFile marshals and writes a BENCH_results.json-format file.
func writeBenchFile(path string, file benchFile) error {
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d run(s))\n", path, len(file.Runs))
	return nil
}

// gateBench runs the (filtered) suite and compares it against the most
// recent baseline run in baselinePath that contains each benchmark. A
// benchmark fails the gate when its ns/op regresses by more than tolPct
// percent, or when its allocs/op increases at all — allocation counts are
// deterministic, so any increase is a real regression, while ns/op gets a
// noise allowance. New benchmarks absent from the baseline pass by
// definition.
func gateBench(baselinePath, filter string, tolPct float64) error {
	file, err := readBenchFile(baselinePath)
	if err != nil {
		return err
	}
	if len(file.Runs) == 0 {
		return fmt.Errorf("bench-gate: %s contains no runs", baselinePath)
	}
	// Latest run wins per benchmark name, so re-baselining a subset (via
	// -bench-filter with -bench-append) behaves as expected.
	baseline := make(map[string]benchResult)
	for _, run := range file.Runs {
		for _, r := range run.Benchmarks {
			baseline[r.Name] = r
		}
	}

	run, err := runBenchSuite("gate", filter)
	if err != nil {
		return err
	}
	failures := 0
	for _, r := range run.Benchmarks {
		base, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("gate %-18s NEW     %12.2f ns/op %6d allocs/op (no baseline)\n",
				r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		nsDelta := 100 * (r.NsPerOp - base.NsPerOp) / base.NsPerOp
		status := "ok"
		switch {
		case r.AllocsPerOp > base.AllocsPerOp:
			status = "FAIL"
			failures++
		case nsDelta > tolPct:
			status = "FAIL"
			failures++
		}
		fmt.Printf("gate %-18s %-4s %+8.1f%% ns/op (%.2f -> %.2f), allocs %d -> %d\n",
			r.Name, status, nsDelta, base.NsPerOp, r.NsPerOp, base.AllocsPerOp, r.AllocsPerOp)
	}
	if failures > 0 {
		return fmt.Errorf("bench-gate: %d benchmark(s) regressed beyond %.0f%% ns/op or grew allocs/op", failures, tolPct)
	}
	fmt.Printf("bench-gate: all %d benchmark(s) within %.0f%% of baseline\n", len(run.Benchmarks), tolPct)
	return nil
}
