package main

import (
	"testing"

	"dumbnet/internal/packet"
	"dumbnet/internal/sim"
	"dumbnet/internal/testnet"
	"dumbnet/internal/topo"
)

// Sharded-engine benchmarks. EngineShardedN measures the raw window/barrier
// protocol on a synthetic workload; FatTreeK16ShardsN measures an identical
// end-to-end traffic mix on a 320-switch fat-tree deployed on 1 vs 8
// shards. The pairs share one workload each, so their ns/op ratio is the
// parallel speedup (or, single-core, the synchronization overhead) — see
// EXPERIMENTS.md for the comparison recipe and the GOMAXPROCS caveat.

// benchEngineSharded runs one fixed workload — 8 node slots in a ring, each
// with a 1µs periodic timer that sends a frame to both ring neighbors over
// 50µs links — distributed round-robin across n shards, then measures
// RunFor(1ms) windows. The virtual workload is identical for every shard
// count; only the slot-to-shard assignment (and thus how many links cross
// shards) changes.
func benchEngineSharded(b *testing.B, shards int) {
	const slots = 8
	g := sim.NewShardedEngine(1, sim.Shards(shards))
	ends := make([]*benchSink, slots)
	engs := make([]*sim.Engine, slots)
	for i := 0; i < slots; i++ {
		ends[i] = &benchSink{}
		engs[i] = g.Shard(i % shards)
	}
	lcfg := sim.LinkConfig{PropDelay: 50 * sim.Microsecond, BandwidthBps: 10e9}
	links := make([]*sim.Link, slots) // links[i]: slot i <-> slot (i+1)%slots
	for i := 0; i < slots; i++ {
		j := (i + 1) % slots
		links[i] = sim.NewLinkBetween(engs[i], ends[i], 1, engs[j], ends[j], 1, lcfg)
	}
	frame := make([]byte, 256)
	for i := 0; i < slots; i++ {
		eng := engs[i]
		idx := i
		var tick func()
		tick = func() {
			links[idx].SendFrom(ends[idx], frame)
			links[(idx+slots-1)%slots].SendFrom(ends[idx], frame)
			eng.After(sim.Microsecond, tick)
		}
		eng.After(sim.Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RunFor(sim.Millisecond)
	}
	b.StopTimer()
	if g.Processed() == 0 {
		b.Fatal("sharded benchmark processed no events")
	}
}

// benchFatTreeK16 deploys a k=16 fat-tree (320 switches, 128 hosts) on the
// given shard count and measures draining a fixed cross-pod traffic wave:
// 16 host pairs sampled across pods, one 1400-byte frame each way per op.
func benchFatTreeK16(b *testing.B, shards int) {
	tp, err := topo.FatTree(16, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := testnet.DefaultOptions()
	opts.Shards = shards
	n, err := testnet.Build(tp, opts)
	if err != nil {
		b.Fatal(err)
	}
	const pairCount = 16
	hosts := n.Hosts
	pairs := make([][2]packet.MAC, 0, pairCount)
	for i := 0; i < pairCount; i++ {
		pairs = append(pairs, [2]packet.MAC{hosts[i], hosts[len(hosts)-1-i]})
	}
	// Warm the route caches so steady-state forwarding is measured, not the
	// first-packet path-request round trips.
	for _, p := range pairs {
		if err := n.Agents[p[0]].WarmUp(p[1]); err != nil {
			b.Fatal(err)
		}
		if err := n.Agents[p[1]].WarmUp(p[0]); err != nil {
			b.Fatal(err)
		}
	}
	n.Run()
	payload := make([]byte, 1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			if err := n.Agents[p[0]].SendData(p[1], payload); err != nil {
				b.Fatal(err)
			}
			if err := n.Agents[p[1]].SendData(p[0], payload); err != nil {
				b.Fatal(err)
			}
		}
		n.Run()
	}
}
