// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7), plus microbenchmarks of the hot datapath primitives. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benches execute the corresponding experiments package
// generator (quick variants where the full sweep takes minutes) and fail
// the bench if any of the paper's shape checks regress.
package dumbnet_test

import (
	"math/rand"
	"testing"

	"dumbnet/internal/experiments"
	"dumbnet/internal/flowsim"
	"dumbnet/internal/host"
	"dumbnet/internal/packet"
	"dumbnet/internal/topo"
)

// requirePass fails the benchmark if an experiment's shape checks regress.
func requirePass(b *testing.B, res *experiments.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if !res.AllPass() {
		b.Fatalf("%s: shape checks failed:\n%s", res.Name, res.String())
	}
}

// --- One bench per paper table/figure -----------------------------------

func BenchmarkTable1CodeBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(".")
		requirePass(b, res, err)
	}
}

func BenchmarkTable2KernelModule(b *testing.B) {
	sz := experiments.DefaultTable2Sizes()
	sz.Reps = 200
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(sz)
		requirePass(b, res, err)
	}
}

func BenchmarkFig7FPGAResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7()
		requirePass(b, res, nil)
	}
}

func BenchmarkFig8aDiscoveryVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8a(true)
		requirePass(b, res, err)
	}
}

func BenchmarkFig8bDiscoveryVsPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8b(true)
		requirePass(b, res, err)
	}
}

func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(5000)
		requirePass(b, res, err)
	}
}

func BenchmarkFig10LatencyCDF(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.PingsPerPair = 20
	cfg.Pairs = 40
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg)
		requirePass(b, res, err)
	}
}

func BenchmarkFig11aNotificationDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11a(experiments.DefaultFig11aConfig())
		requirePass(b, res, err)
	}
}

func BenchmarkFig11bFailoverVsSTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11b(experiments.DefaultFig11bConfig())
		requirePass(b, res, err)
	}
}

func BenchmarkFig12PathGraphSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(6, 2, 1)
		requirePass(b, res, err)
	}
}

func BenchmarkFig13HiBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(experiments.DefaultFig13Config())
		requirePass(b, res, err)
	}
}

func BenchmarkAggregateLeafThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AggregateLeafThroughput()
		requirePass(b, res, err)
	}
}

func BenchmarkTestbedDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TestbedDiscovery()
		requirePass(b, res, err)
	}
}

// --- Ablation benches (design-choice experiments beyond the paper) ------

func BenchmarkAblationPathGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPathGraph(15, 1)
		requirePass(b, res, err)
	}
}

func BenchmarkAblationFlowletTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFlowletTimeout()
		requirePass(b, res, err)
	}
}

func BenchmarkAblationHopLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHopLimit()
		requirePass(b, res, err)
	}
}

func BenchmarkAblationSuppression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSuppression()
		requirePass(b, res, err)
	}
}

func BenchmarkAblationECN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationECN()
		requirePass(b, res, err)
	}
}

func BenchmarkAblationPHostIncast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPHostIncast()
		requirePass(b, res, err)
	}
}

func BenchmarkFlowCompletionTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FlowCompletionTimes(0.5, 0.5, nil, 1)
		requirePass(b, res, err)
	}
}

func BenchmarkStorageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.StorageOverhead(8, 40, 1)
		requirePass(b, res, err)
	}
}

// --- Datapath microbenchmarks (the Table 2 / Fig 9 primitives) ----------

func BenchmarkFrameEncode(b *testing.B) {
	f := &packet.Frame{
		Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2),
		Tags: packet.Path{2, 3, 5, 1}, InnerType: packet.EtherTypeIPv4,
		Payload: make([]byte, 1450),
	}
	buf := make([]byte, 1600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.EncodeTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecode measures the zero-copy path a switch or host uses on
// the datapath: DecodeFrom into a reused Frame, no per-packet allocation.
func BenchmarkFrameDecode(b *testing.B) {
	f := &packet.Frame{
		Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2),
		Tags: packet.Path{2, 3, 5, 1}, InnerType: packet.EtherTypeIPv4,
		Payload: make([]byte, 1450),
	}
	buf, _ := f.Encode()
	var out packet.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := packet.DecodeFrom(&out, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecodeAlloc keeps the allocating convenience API honest.
func BenchmarkFrameDecodeAlloc(b *testing.B) {
	f := &packet.Frame{
		Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2),
		Tags: packet.Path{2, 3, 5, 1}, InnerType: packet.EtherTypeIPv4,
		Payload: make([]byte, 1450),
	}
	buf, _ := f.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packet.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwitchPopTag(b *testing.B) {
	f := &packet.Frame{
		Dst: packet.MACFromUint64(1), Src: packet.MACFromUint64(2),
		Tags: packet.Path{2, 3, 5, 1}, InnerType: packet.EtherTypeIPv4,
		Payload: make([]byte, 1450),
	}
	master, _ := f.Encode()
	buf := make([]byte, len(master))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, master)
		if _, _, err := packet.PopTag(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathTableLookup(b *testing.B) {
	pt := host.NewPathTable(4)
	var keys []packet.MAC
	for i := 0; i < 10000; i++ {
		m := packet.MACFromUint64(uint64(i) + 1)
		keys = append(keys, m)
		pt.Install(m, &host.TableEntry{Paths: []host.CachedPath{{Tags: packet.Path{1, 2, 3}}}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pt.Lookup(keys[i%len(keys)]) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkShortestPathFatTree(b *testing.B) {
	ft, err := topo.FatTree(16, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	hosts := ft.Hosts()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)].Host
		dst := hosts[(i*7+13)%len(hosts)].Host
		if src == dst {
			continue
		}
		if _, err := ft.HostPath(src, dst, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPathGraphCube(b *testing.B) {
	cube, err := topo.Cube(8, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	hosts := cube.Hosts()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)].Host
		dst := hosts[(i*31+77)%len(hosts)].Host
		if src == dst {
			continue
		}
		if _, err := topo.BuildPathGraph(cube, src, dst, topo.PathGraphOptions{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowsimAllocate1000Flows(b *testing.B) {
	net := flowsim.NewNetwork()
	var links []flowsim.LinkID
	for i := 0; i < 128; i++ {
		links = append(links, net.AddLink(1e9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := flowsim.NewSimulator(net)
		first := &flowsim.Flow{ID: 0, Path: []flowsim.LinkID{links[0], links[17]}, Size: 1e6}
		s.Add(first)
		for f := 1; f < 1000; f++ {
			s.Add(&flowsim.Flow{
				ID:   f,
				Path: []flowsim.LinkID{links[f%128], links[(f+17)%128]},
				Size: 1e6,
			})
		}
		if s.RateOf(first) <= 0 { // forces one max-min allocation
			b.Fatal("no allocation")
		}
	}
}
